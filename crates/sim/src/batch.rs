//! Many-worlds batching: K replicas of one topology simulated in lockstep.
//!
//! A rate ladder, a Monte-Carlo seed batch, or a homogeneous scenario
//! expansion simulates the *same* network K times with different injection
//! rates/seeds. [`BatchSimulator`] runs those replicas as K contiguous
//! *lanes* of one widened struct-of-arrays state: every per-VC/per-port
//! array of the scalar engine holds K per-replica entries back to back
//! (`array[g·K + lane]`), so the per-cycle arbitration scans walk all
//! replicas of a router in one linear pass and the eligibility/request
//! conditions evaluate branch-free across lanes (bit-parallel `u64` lane
//! masks; portable, no unstable SIMD).
//!
//! Two layout choices keep the lockstep pass memory-lean where the scalar
//! engine can afford to be lazy:
//!
//! - Flits are packed into one `u64` word (`packet | seq/tail | dst`), so a
//!   buffer push or pop moves two words (flit + eligibility) instead of
//!   five parallel arrays, and the route/output-VC pair shares one `u32`
//!   (`vc_rov`) so the hot arbitration predicates test a single load.
//! - Per-replica side state that the scalar engine keeps per run — activity
//!   counters, the credit-return wheel, the link-arrival wheel — is
//!   flattened into shared lane-major arrays. The updates are commutative
//!   across lanes and each lane's own event order is preserved, so the
//!   per-lane observable sequence is untouched while K replicas share cache
//!   lines instead of chasing K separate heaps.
//!
//! Replicas stay fully independent: each lane owns its RNG stream, packet
//! ledger, statistics accumulators, and warmup/measure/drain windows.
//! Lanes that finish early are *masked out* of the lane word rather than
//! branching the loop — the shared scans may still read a finished lane's
//! arrays, but every write is gated on the live mask, so a dead lane is
//! inert. The per-lane sequence of arbitration decisions, RNG draws, and
//! event-wheel pushes is exactly the scalar engine's, which makes every
//! lane's [`SimStats`] **bit-identical** to a scalar
//! [`Simulator`](crate::Simulator) run of the same (workload, config) —
//! the property suite and the golden fingerprints pin this replica by
//! replica, so batching is an invisible performance layer.

use crate::config::SimConfig;
use crate::engine::workload_fingerprint;
use crate::flit::{Flit, PacketRecord, PENDING};
use crate::network::{NetTables, NONE_U32};
use crate::stats::{ActivityCounters, SimStats};
use noc_model::fingerprint::Fnv1a;
use noc_rng::rngs::SmallRng;
use noc_rng::SeedableRng;
use noc_routing::DorRouter;
use noc_snapshot::{Reader, SnapshotError, Writer};
use noc_topology::MeshTopology;
use noc_traffic::Workload;
use std::collections::VecDeque;
use std::sync::Arc;

/// Maximum replicas per lockstep pass: the live/measure masks are single
/// `u64` lane words.
pub const MAX_LANES: usize = 64;

/// Snapshot kind tag for [`BatchSimulator`] snapshots.
pub const BATCH_KIND: &str = "sim-batch";

/// Packed-flit word layout: `packet` in bits 0..32, `seq` in bits 32..47,
/// `tail` at bit 47, `dst` in bits 48..64. The sequence field is 15 bits —
/// one less than [`Flit::seq`] — which holds every packet the flit-width
/// grid can produce (the scalar engine already truncates at 16 bits).
const SEQ_SHIFT: u32 = 32;
const SEQ_BITS: u64 = 0x7FFF << SEQ_SHIFT;
const TAIL_BIT: u64 = 1 << 47;
const DST_SHIFT: u32 = 48;
/// Front-word sentinel for an empty VC: a non-head sequence value, so every
/// head-gated predicate fails without a separate emptiness test.
const FRONT_EMPTY: u64 = 1 << SEQ_SHIFT;

/// Packed route/output-VC pair: route in bits 0..16, allocated output VC in
/// bits 16..32, `0xFFFF` halves meaning "none".
const ROV_NONE: u32 = 0xFFFF_FFFF;
const ROV_ROUTE: u32 = 0x0000_FFFF;

#[inline(always)]
fn pack_flit(f: Flit) -> u64 {
    f.packet as u64
        | (((f.seq as u64) & 0x7FFF) << SEQ_SHIFT)
        | ((f.tail as u64) << 47)
        | ((f.dst as u64) << DST_SHIFT)
}

#[inline(always)]
fn word_is_head(w: u64) -> bool {
    w & SEQ_BITS == 0
}

#[inline(always)]
fn word_is_tail(w: u64) -> bool {
    w & TAIL_BIT != 0
}

#[inline(always)]
fn word_packet(w: u64) -> u32 {
    w as u32
}

#[inline(always)]
fn word_dst(w: u64) -> u16 {
    (w >> DST_SHIFT) as u16
}

/// A flit in flight on a link, parked in the shared event wheel until its
/// arrival cycle.
#[derive(Debug, Clone, Copy)]
struct ArrivalEvent {
    /// Destination flat input port.
    port: u32,
    /// Destination VC (the allocated downstream VC).
    vc: u16,
    /// Owning replica.
    lane: u16,
    /// Packed flit word.
    word: u64,
}

/// Per-replica state that never crosses lanes.
struct Lane {
    workload: Workload,
    config: SimConfig,
    rng: SmallRng,
    packets: Vec<PacketRecord>,
    latencies: Vec<u32>,
    /// End of this lane's measure window (`warmup + measure`).
    window_end: u64,
    /// This lane's drain deadline (`window_end + drain_cycles_max`).
    hard_end: u64,
    measured_total: u64,
    completed_measured: u64,
    latency_sum: u64,
    head_latency_sum: u64,
    max_latency: u64,
    flit_sum: u64,
    ejected_in_window: u64,
    /// Number of occupancy samples taken (telemetry only).
    occ_samples: u64,
    /// Set when the lane terminates; the run result in lane order.
    stats: Option<SimStats>,
}

impl Lane {
    #[inline]
    fn in_measure(&self, t: u64) -> bool {
        t >= self.config.warmup_cycles && t < self.window_end
    }
}

/// K lockstep replicas of one topology (see the module docs).
pub struct BatchSimulator {
    tables: Arc<NetTables>,
    k: usize,
    lanes: Vec<Lane>,
    /// Bitmask of lanes still running.
    live: u64,
    /// Bitmask of live lanes inside their measure window this cycle.
    measure_mask: u64,
    cycle: u64,
    horizon: u64,
    trace_on: bool,
    /// Σ over executed cycles of (K − live lanes): lockstep slots spent on
    /// already-finished replicas.
    masked_cycles: u64,
    // ---- lane-major dynamic network state ----
    // Input VC `g`, lane `l` → `g·K + l`; output VC `(o,v)` → `(o·V+v)·K+l`;
    // output port `o` → `o·K + l`; router `r` → `r·K + l`.
    vc_buf: Vec<VecDeque<(u64, u32)>>,
    /// Flat ring storage for *network* VC queues (bounded by credit flow to
    /// `depth - 1` entries behind the front flit): slot `gi·D + pos`.
    /// Injection VCs are unbounded NI queues and stay on [`Self::vc_buf`];
    /// `ring_depth == 0` disables the ring (pathological depths) and falls
    /// back to deques everywhere.
    ring: Vec<(u64, u32)>,
    ring_head: Vec<u8>,
    ring_depth: usize,
    /// Packed front-flit word; empty VCs hold [`FRONT_EMPTY`].
    front_word: Vec<u64>,
    vc_len: Vec<u32>,
    /// Packed (route, output VC) per input VC; see [`ROV_NONE`].
    vc_rov: Vec<u32>,
    // ---- per-group lane masks ----
    // Indexed by flat input VC `g`, bit `l` = lane `l`. Each mirrors one
    // per-VC predicate so the arbitration scan is a handful of u64 ops per
    // VC group instead of per-lane loops (which LLVM refuses to vectorize).
    // They are maintained event-driven at exactly the points the underlying
    // state changes: RC, VA grant, SA pop, queue push.
    /// Route half of [`Self::vc_rov`] is still NONE.
    grp_unrouted: Vec<u64>,
    /// Output-VC half of [`Self::vc_rov`] is still NONE.
    grp_noovc: Vec<u64>,
    /// The VC's front flit exists and is a head.
    grp_head: Vec<u64>,
    /// Front flit is link-eligible this cycle (`eg ≤ t`). A VA grant at `t`
    /// clears the bit and reschedules `t + 1`: heads wait a cycle after
    /// allocation, so the wait folds into eligibility and no separate
    /// `va_done` state is needed.
    grp_e0: Vec<u64>,
    /// Front flit is link-eligible next cycle (`eg ≤ t + 1`), the VA view.
    grp_e1: Vec<u64>,
    /// Per flat output VC: no owning packet (free for VA).
    ovc_free: Vec<u64>,
    /// Eligibility schedule: `(g << 6) | lane` entries land in slot
    /// `c & 3` to set the group bits when cycle `c` comes around — slot
    /// `c` is applied to [`Self::grp_e1`] at `c - 1` and to
    /// [`Self::grp_e0`] (then drained) at `c`. Eligibilities are at most
    /// 2 cycles out, so 4 slots never collide.
    elig_wheel: [Vec<u32>; 4],
    ovc_credits: Vec<u32>,
    out_va_rr: Vec<u32>,
    out_sa_rr: Vec<u32>,
    active_inputs: Vec<u32>,
    /// VA request masks, `(local output port)·K + lane`, rebuilt per router.
    req: Vec<u64>,
    /// SA request masks, same layout. Kept separate from `req` because VA
    /// consumes its masks while SA's are built in the same first pass: a
    /// same-cycle VA grant never makes a VC switch-ready (heads wait a
    /// cycle), so the SA-ready set is fully known before VA runs.
    req_sa: Vec<u64>,
    /// Per-lane used-input-VC masks for the one-winner-per-input-port rule.
    used_vcs: Vec<u64>,
    /// Lanes with a non-empty VA (`wantnz`) / SA (`rdynz`) request word per
    /// local output port, maintained by the scatter passes. They replace
    /// per-port lane scans and let the request arrays be cleared
    /// surgically (only touched words) instead of memset per router.
    wantnz: Vec<u64>,
    rdynz: Vec<u64>,
    /// `pick → (input port, VC)` split, avoiding a hardware divide in the
    /// winner bodies (`vcs` is runtime-valued).
    pick_iv: Vec<(u8, u8)>,
    /// Activity counters, `router·K + lane` (lane-major so the K replicas
    /// of a busy router share cache lines).
    activity: Vec<ActivityCounters>,
    /// Shared credit-return wheel (1-cycle wire delay): entries are
    /// `flat output VC · K + lane` — credit application is commutative
    /// across lanes and per-lane push order is preserved.
    credit_wheel: [Vec<u32>; 2],
    /// Shared link-arrival wheel; bucket `t % horizon` holds cycle-`t`
    /// arrivals of every lane (per-lane arrival order is preserved).
    arrivals: Vec<Vec<ArrivalEvent>>,
    /// Injection scratch, reused across lanes.
    pending: Vec<(u32, u32, u32)>,
    /// Telemetry accumulators, `output·K + lane` / `router·K + lane`
    /// (empty when tracing is off).
    link_flits: Vec<u64>,
    occ_sum: Vec<u64>,
}

/// Pushes a packed flit word into flat input VC `g` of lane `l` (free
/// function so the inject/arrival paths can call it under split borrows).
/// `ring_depth > 0` routes the queue tail to the flat ring (network VCs);
/// `0` keeps it on the per-VC deque (injection VCs, or ring disabled).
#[inline]
#[allow(clippy::too_many_arguments)]
fn push_word_at(
    tables: &NetTables,
    k: usize,
    vc_buf: &mut [VecDeque<(u64, u32)>],
    ring: &mut [(u64, u32)],
    ring_head: &[u8],
    ring_depth: usize,
    front_word: &mut [u64],
    grp_head: &mut [u64],
    elig_slot: &mut Vec<u32>,
    vc_len: &mut [u32],
    vc_rov: &[u32],
    active_inputs: &mut [u32],
    g: usize,
    l: usize,
    word: u64,
    eligible: u32,
) {
    let gi = g * k + l;
    if vc_len[gi] == 0 {
        if vc_rov[gi] & ROV_ROUTE == ROV_ROUTE {
            let r = tables.in_port_router[g / tables.vcs] as usize;
            active_inputs[r * k + l] += 1;
        }
        front_word[gi] = word;
        // The VC was empty, so its head/eligibility bits are clear; the
        // new front becomes eligible 2 cycles out via the wheel.
        grp_head[g] |= (word_is_head(word) as u64) << l;
        elig_slot.push(((g as u32) << 6) | l as u32);
    } else if ring_depth > 0 {
        let qlen = vc_len[gi] as usize - 1;
        let mut pos = ring_head[gi] as usize + qlen;
        if pos >= ring_depth {
            pos -= ring_depth;
        }
        ring[gi * ring_depth + pos] = (word, eligible);
    } else {
        vc_buf[gi].push_back((word, eligible));
    }
    vc_len[gi] += 1;
}

/// Lanes of `live` with any active input VC at router `r` (free function so
/// stage bodies can call it while holding split borrows of the state
/// arrays). A lane at zero is provably idle — skipping it cannot change
/// arbitration because round-robin pointers only advance on assignments.
#[inline(always)]
fn router_lanes_of(active_inputs: &[u32], live: u64, r: usize, k: usize) -> u64 {
    let row = &active_inputs[r * k..r * k + k];
    let mut b = [0u8; MAX_LANES];
    for (x, &a) in b[..k].iter_mut().zip(row) {
        *x = (a > 0) as u8;
    }
    pack_mask(&b[..k]) & live
}

/// Packs a slice of 0/1 bytes into a bitmask (byte `i` → bit `i`).
///
/// The lane predicates are computed into byte arrays first because plain
/// elementwise byte stores autovectorize, while the direct
/// `mask |= (pred as u64) << lane` or-reduction does not (LLVM emits it
/// fully scalar). Each aligned 8-byte chunk collapses via the classic
/// multiply trick: with bytes in {0, 1}, byte sums never carry into the
/// top byte, so `(chunk · 0x0102_0408_1020_4080) >> 56` yields
/// `b0 | b1·2 | … | b7·128`.
#[inline(always)]
fn pack_mask(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 64);
    let mut out = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    let mut i = 0;
    for c in &mut chunks {
        let chunk = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        out |= (chunk.wrapping_mul(0x0102_0408_1020_4080) >> 56) << i;
        i += 8;
    }
    for &b in chunks.remainder() {
        out |= ((b & 1) as u64) << i;
        i += 1;
    }
    out
}

impl BatchSimulator {
    /// Whether a topology/lane-count pair fits the lockstep fast path: at
    /// most [`MAX_LANES`] replicas and every router's request mask within
    /// one 64-bit arbitration word (a mesh router has `5·V` input VCs and
    /// even heavily express-linked routers stay far below 32 input ports,
    /// so the bound is generous in practice). Callers fall back to scalar
    /// runs (bit-identical by construction) when this is false.
    pub fn supported(tables: &NetTables, lanes: usize) -> bool {
        (1..=MAX_LANES).contains(&lanes) && tables.max_total_vcs() <= 64
    }

    /// Builds a lockstep batch over one topology. All replicas must share
    /// the topology's structural parameters (VC count, hop weights — they
    /// select the shared route tables); seeds, rates, workloads, flit
    /// widths, buffer depths, and window lengths vary freely per lane.
    pub fn new(topology: &MeshTopology, replicas: Vec<(Workload, SimConfig)>) -> Self {
        assert!(!replicas.is_empty(), "batch needs at least one replica");
        let first = replicas[0].1;
        let dor = DorRouter::new(topology, first.weights);
        let tables = Arc::new(NetTables::build(topology, &dor, first.vcs_per_port));
        Self::with_tables(tables, replicas)
    }

    /// Builds a lockstep batch over pre-built shared tables (one
    /// [`NetTables::build`] per topology, shared read-only across lanes
    /// and worker threads).
    pub fn with_tables(tables: Arc<NetTables>, replicas: Vec<(Workload, SimConfig)>) -> Self {
        let k = replicas.len();
        assert!(k >= 1, "batch needs at least one replica");
        assert!(
            Self::supported(&tables, k),
            "unsupported batch: {k} lanes, {} request bits",
            tables.max_total_vcs()
        );
        let first = replicas[0].1;
        for (workload, config) in &replicas {
            assert_eq!(
                workload.matrix().side(),
                tables.side,
                "workload and topology sizes must match"
            );
            assert_eq!(
                config.vcs_per_port, tables.vcs,
                "all lanes must share the tables' VC count"
            );
            assert_eq!(
                config.weights, first.weights,
                "all lanes must share the tables' hop weights"
            );
        }

        let routers = tables.routers;
        let vcs = tables.vcs;
        let total_in_vcs = tables.total_inputs() * vcs;
        let total_out_vcs = tables.total_outputs() * vcs;
        let total_outputs = tables.total_outputs();
        let horizon = tables.max_span() as u64 + 2;
        let max_outputs = tables.max_outputs();
        let trace_on = noc_trace::enabled();

        // Per-lane credits: depth everywhere except ejection (infinite).
        let mut ovc_credits = vec![0u32; total_out_vcs * k];
        for (l, (_, config)) in replicas.iter().enumerate() {
            let depth = config.buffer_flits_per_vc as u32;
            for ov in 0..total_out_vcs {
                ovc_credits[ov * k + l] = depth;
            }
            for r in 0..routers {
                let ej = tables.ejection_port(r);
                for v in 0..vcs {
                    ovc_credits[(ej * vcs + v) * k + l] = u32::MAX / 2;
                }
            }
        }

        let lanes: Vec<Lane> = replicas
            .into_iter()
            .map(|(workload, config)| {
                let per_cycle = workload.injection_rate() * routers as f64;
                let window = (config.warmup_cycles + config.measure_cycles) as f64;
                let expect = (per_cycle * window).ceil() as usize;
                let measured = (per_cycle * config.measure_cycles as f64).ceil() as usize;
                let mut packets = Vec::new();
                let mut latencies = Vec::new();
                packets.reserve(expect + expect / 8 + 64);
                latencies.reserve(measured + measured / 8 + 16);
                let window_end = config.warmup_cycles + config.measure_cycles;
                Lane {
                    rng: SmallRng::seed_from_u64(config.seed),
                    packets,
                    latencies,
                    window_end,
                    hard_end: window_end + config.drain_cycles_max,
                    measured_total: 0,
                    completed_measured: 0,
                    latency_sum: 0,
                    head_latency_sum: 0,
                    max_latency: 0,
                    flit_sum: 0,
                    ejected_in_window: 0,
                    occ_samples: 0,
                    stats: None,
                    workload,
                    config,
                }
            })
            .collect();

        let live = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        let max_depth = lanes
            .iter()
            .map(|lane| lane.config.buffer_flits_per_vc)
            .max()
            .unwrap_or(0);
        let ring_depth = if (1..=64).contains(&max_depth) {
            max_depth
        } else {
            0
        };
        let pick_iv = (0..tables.max_total_vcs())
            .map(|p| ((p / tables.vcs) as u8, (p % tables.vcs) as u8))
            .collect();
        BatchSimulator {
            tables,
            k,
            lanes,
            live,
            measure_mask: 0,
            cycle: 0,
            horizon,
            trace_on,
            masked_cycles: 0,
            vc_buf: (0..total_in_vcs * k).map(|_| VecDeque::new()).collect(),
            ring: if ring_depth > 0 {
                vec![(0, 0); total_in_vcs * k * ring_depth]
            } else {
                Vec::new()
            },
            ring_head: if ring_depth > 0 {
                vec![0; total_in_vcs * k]
            } else {
                Vec::new()
            },
            ring_depth,
            front_word: vec![FRONT_EMPTY; total_in_vcs * k],
            vc_len: vec![0u32; total_in_vcs * k],
            vc_rov: vec![ROV_NONE; total_in_vcs * k],
            grp_unrouted: vec![u64::MAX; total_in_vcs],
            grp_noovc: vec![u64::MAX; total_in_vcs],
            grp_head: vec![0u64; total_in_vcs],
            grp_e0: vec![0u64; total_in_vcs],
            grp_e1: vec![0u64; total_in_vcs],
            ovc_free: vec![u64::MAX; total_out_vcs],
            elig_wheel: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            ovc_credits,
            out_va_rr: vec![0u32; total_outputs * k],
            out_sa_rr: vec![0u32; total_outputs * k],
            active_inputs: vec![0u32; routers * k],
            req: vec![0u64; max_outputs * k],
            req_sa: vec![0u64; max_outputs * k],
            used_vcs: vec![0u64; k],
            wantnz: vec![0u64; max_outputs],
            rdynz: vec![0u64; max_outputs],
            pick_iv,
            activity: vec![ActivityCounters::default(); routers * k],
            credit_wheel: [Vec::new(), Vec::new()],
            arrivals: vec![Vec::new(); horizon as usize],
            pending: Vec::new(),
            link_flits: if trace_on {
                vec![0; total_outputs * k]
            } else {
                Vec::new()
            },
            occ_sum: if trace_on {
                vec![0; routers * k]
            } else {
                Vec::new()
            },
        }
    }

    /// Replica count.
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Runs every lane to completion and returns per-replica statistics in
    /// lane order, each bit-identical to the scalar engine.
    pub fn run(mut self) -> Vec<SimStats> {
        let k = self.k as u64;
        let hist = if self.trace_on {
            noc_trace::sink().map(|sink| {
                let reg = sink.registry();
                reg.counter("sim.batch.runs").add(1);
                reg.counter("sim.batch.lanes").add(k);
                reg.histogram("sim.batch.lane_occupancy")
            })
        } else {
            None
        };

        while self.live != 0 {
            let alive = self.live.count_ones() as u64;
            self.masked_cycles += k - alive;
            if let Some(h) = &hist {
                h.record(alive);
            }
            self.step();
            self.retire_finished();
        }
        if self.trace_on {
            if let Some(sink) = noc_trace::sink() {
                sink.registry()
                    .counter("sim.batch.masked_cycles")
                    .add(self.masked_cycles);
            }
            for l in 0..self.k {
                let stats = self.lanes[l].stats.take().expect("lane finished");
                self.emit_trace(l, &stats);
                self.lanes[l].stats = Some(stats);
            }
        }
        self.lanes
            .into_iter()
            .map(|lane| lane.stats.expect("lane finished"))
            .collect()
    }

    /// Runs until the shared cycle counter reaches `target_cycle` or every
    /// lane has finished, whichever comes first; returns whether the whole
    /// batch is done. Stepping in chunks (including across a
    /// [`BatchSimulator::snapshot`]/restore boundary) then calling
    /// [`BatchSimulator::run`] yields per-lane statistics bit-identical to
    /// an uninterrupted [`BatchSimulator::run`].
    pub fn run_until(&mut self, target_cycle: u64) -> bool {
        let k = self.k as u64;
        let hist = if self.trace_on {
            noc_trace::sink().map(|sink| sink.registry().histogram("sim.batch.lane_occupancy"))
        } else {
            None
        };
        while self.live != 0 && self.cycle < target_cycle {
            let alive = self.live.count_ones() as u64;
            self.masked_cycles += k - alive;
            if let Some(h) = &hist {
                h.record(alive);
            }
            self.step();
            self.retire_finished();
        }
        self.live == 0
    }

    /// Current lockstep cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Rolling FNV-1a digest of the complete dynamic batch state (all K
    /// lanes) at the current cycle boundary: the digest of the serialized
    /// snapshot, so a snapshot/restore round trip preserves it exactly.
    pub fn state_hash(&self) -> u64 {
        let mut fp = Fnv1a::with_tag("sim-batch-state");
        fp.write_bytes(&self.snapshot());
        fp.finish()
    }

    /// One lockstep cycle: the scalar engine's stage order, each stage
    /// sweeping every live lane.
    fn step(&mut self) {
        let t = self.cycle;
        if self.trace_on && (t & 4095) == 0 {
            // Rolling state-hash series (the scalar engine's cadence); the
            // hash covers all K lanes. Telemetry only.
            noc_trace::emit(
                "series",
                "sim.state_hash",
                vec![
                    ("cycle", noc_trace::FieldValue::U64(t)),
                    ("lanes", noc_trace::FieldValue::U64(self.k as u64)),
                    ("hash", noc_trace::FieldValue::U64(self.state_hash())),
                ],
            );
        }
        let mut measure = 0u64;
        let mut m = self.live;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lanes[l].in_measure(t) {
                measure |= 1 << l;
            }
        }
        self.measure_mask = measure;

        self.apply_credits(t);
        self.process_arrivals(t);
        self.inject(t);
        self.apply_eligibility(t);
        self.arbitrate_dispatch(t);
        if self.trace_on && (t & 63) == 0 {
            self.sample_occupancy();
        }
        self.cycle = t + 1;
    }

    /// Finalizes lanes whose run loop would have exited this cycle.
    fn retire_finished(&mut self) {
        let mut m = self.live;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let lane = &self.lanes[l];
            if self.cycle < lane.window_end {
                continue;
            }
            let drained = lane.completed_measured == lane.measured_total;
            if drained || self.cycle >= lane.hard_end {
                let stats = self.finalize_lane(l, drained);
                self.lanes[l].stats = Some(stats);
                self.live &= !(1u64 << l);
            }
        }
    }

    fn apply_credits(&mut self, t: u64) {
        let slot = (t & 1) as usize;
        let BatchSimulator {
            credit_wheel,
            ovc_credits,
            ..
        } = self;
        let wheel = &mut credit_wheel[slot];
        for &idx in wheel.iter() {
            ovc_credits[idx as usize] += 1;
        }
        wheel.clear();
    }

    /// Applies the eligibility schedule for cycle `t`: slot `t + 1` feeds
    /// the next-cycle view (`grp_e1`), slot `t` feeds the current-cycle
    /// view (`grp_e0`) and is drained — each slot is read exactly twice.
    fn apply_eligibility(&mut self, t: u64) {
        let s1 = ((t + 1) & 3) as usize;
        for &e in &self.elig_wheel[s1] {
            self.grp_e1[(e >> 6) as usize] |= 1u64 << (e & 63);
        }
        let s0 = (t & 3) as usize;
        let mut bucket = std::mem::take(&mut self.elig_wheel[s0]);
        for &e in &bucket {
            self.grp_e0[(e >> 6) as usize] |= 1u64 << (e & 63);
        }
        bucket.clear();
        self.elig_wheel[s0] = bucket;
    }

    fn process_arrivals(&mut self, t: u64) {
        let k = self.k;
        let slot = (t % self.horizon) as usize;
        let BatchSimulator {
            tables,
            measure_mask,
            vc_buf,
            ring,
            ring_head,
            ring_depth,
            front_word,
            grp_head,
            elig_wheel,
            vc_len,
            vc_rov,
            active_inputs,
            activity,
            arrivals,
            ..
        } = self;
        let elig_slot = &mut elig_wheel[((t + 2) & 3) as usize];
        let tables: &NetTables = tables;
        let vcs = tables.vcs;
        let measure_mask = *measure_mask;
        let ring_depth = *ring_depth;
        let eligible = (t + 2) as u32;
        let mut bucket = std::mem::take(&mut arrivals[slot]);
        for ev in bucket.iter() {
            let g = ev.port as usize * vcs + ev.vc as usize;
            let l = ev.lane as usize;
            push_word_at(
                tables,
                k,
                vc_buf,
                ring,
                ring_head,
                ring_depth,
                front_word,
                grp_head,
                elig_slot,
                vc_len,
                vc_rov,
                active_inputs,
                g,
                l,
                ev.word,
                eligible,
            );
            if measure_mask & (1 << l) != 0 {
                let r = tables.in_port_router[ev.port as usize] as usize;
                activity[r * k + l].buffer_writes += 1;
            }
        }
        bucket.clear();
        self.arrivals[slot] = bucket;
    }

    fn inject(&mut self, t: u64) {
        let k = self.k;
        let BatchSimulator {
            tables,
            lanes,
            live,
            measure_mask,
            vc_buf,
            front_word,
            grp_head,
            elig_wheel,
            vc_len,
            vc_rov,
            active_inputs,
            pending,
            ..
        } = self;
        let elig_slot = &mut elig_wheel[((t + 2) & 3) as usize];
        let tables: &NetTables = tables;
        let nodes = tables.routers;
        let vcs = tables.vcs;
        let eligible = (t + 2) as u32;
        let mut mask = *live;
        while mask != 0 {
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            pending.clear();
            let measure = *measure_mask & (1 << l) != 0;
            let lane = &mut lanes[l];
            let flit_bits = lane.config.flit_bits;
            for node in 0..nodes {
                if let Some(spec) = lane.workload.generate(node, &mut lane.rng) {
                    pending.push((node as u32, spec.bits, spec.dst as u32));
                }
            }
            for &(node, bits, dst) in pending.iter() {
                let node = node as usize;
                let flits = bits.div_ceil(flit_bits).max(1);
                let packet_id = lane.packets.len() as u32;
                lane.packets.push(PacketRecord {
                    src: node as u16,
                    dst: dst as u16,
                    flits,
                    created: t as u32,
                    head_done: PENDING,
                    tail_done: PENDING,
                    measured: measure,
                });
                if measure {
                    lane.measured_total += 1;
                    lane.flit_sum += flits as u64;
                }
                // Enqueue into the least-loaded injection VC (NI queues).
                let inj = tables.in_port_off[node + 1] as usize - 1;
                let vc_idx = (0..vcs)
                    .min_by_key(|&v| vc_len[(inj * vcs + v) * k + l])
                    .expect("at least one VC");
                let g = inj * vcs + vc_idx;
                for seq in 0..flits {
                    let word = pack_flit(Flit {
                        packet: packet_id,
                        seq: seq as u16,
                        tail: seq + 1 == flits,
                        dst: dst as u16,
                    });
                    // NI queues are unbounded: always the deque path.
                    push_word_at(
                        tables,
                        k,
                        vc_buf,
                        &mut [],
                        &[],
                        0,
                        front_word,
                        grp_head,
                        elig_slot,
                        vc_len,
                        vc_rov,
                        active_inputs,
                        g,
                        l,
                        word,
                        eligible,
                    );
                }
            }
        }
    }

    /// Dispatches the merged RC/VA/SA pass to a lane-count-specialized
    /// instantiation: with the lane count a compile-time constant the
    /// lane-inner predicate loops have fixed trip counts and vectorize at
    /// full machine width. `KC = 0` is the dynamic fallback.
    fn arbitrate_dispatch(&mut self, t: u64) {
        match self.k {
            8 => self.arbitrate::<8>(t),
            16 => self.arbitrate::<16>(t),
            32 => self.arbitrate::<32>(t),
            64 => self.arbitrate::<64>(t),
            _ => self.arbitrate::<0>(t),
        }
    }

    /// One merged per-router pass: RC + request build, VA, then SA/ST for
    /// router `r` before moving to `r + 1`. The scalar engine sweeps all
    /// routers per stage instead, but no same-cycle dataflow crosses
    /// routers — SA's link arrivals land `span + 1 ≥ 2` cycles out and
    /// credits apply next cycle — so the per-router order is bit-identical
    /// while the router's group slab (front words, rov, eligibility) stays
    /// in L1 across all three phases.
    fn arbitrate<const KC: usize>(&mut self, t: u64) {
        let k = if KC == 0 { self.k } else { KC };
        debug_assert!(KC == 0 || KC == self.k);
        let BatchSimulator {
            tables,
            lanes,
            live,
            measure_mask,
            trace_on,
            horizon,
            vc_buf,
            ring,
            ring_head,
            ring_depth,
            front_word,
            vc_len,
            vc_rov,
            grp_unrouted,
            grp_noovc,
            grp_head,
            grp_e0,
            grp_e1,
            ovc_free,
            elig_wheel,
            ovc_credits,
            out_va_rr,
            out_sa_rr,
            active_inputs,
            req,
            req_sa,
            used_vcs,
            wantnz,
            rdynz,
            pick_iv,
            activity,
            credit_wheel,
            arrivals,
            link_flits,
            ..
        } = self;
        let tables: &NetTables = tables;
        let vcs = tables.vcs;
        let routers = tables.routers;
        let live = *live;
        let measure_mask = *measure_mask;
        let trace_on = *trace_on;
        let ring_depth = *ring_depth;
        let t1 = (t + 1) as u32;
        let t32 = t as u32;
        let es1 = ((t + 1) & 3) as usize;
        let es2 = ((t + 2) & 3) as usize;
        let credit_slot = ((t + 1) & 1) as usize;
        let horizon = *horizon as usize;
        let slot0 = (t % horizon as u64) as usize;
        let input_mask = if vcs >= 64 {
            u64::MAX
        } else {
            (1u64 << vcs) - 1
        };

        for r in 0..routers {
            let rmask = router_lanes_of(active_inputs, live, r, k);
            if rmask == 0 {
                continue;
            }
            let in_lo = tables.in_port_off[r] as usize;
            let in_hi = tables.in_port_off[r + 1] as usize;
            let base = in_lo * vcs;
            let injection_local = in_hi - in_lo - 1;
            let out_lo = tables.out_port_off[r] as usize;
            let out_hi = tables.out_port_off[r + 1] as usize;
            let ejection = out_hi - 1;
            let total_vcs = (in_hi - in_lo) * vcs;
            let gb0 = base * k;
            let glen = total_vcs * k;

            // --- RC + VA request build ---------------------------------
            // Pure mask algebra per input VC: every predicate lives as a
            // pre-maintained per-group lane mask, so the scan is a few u64
            // ops and only the rarer actions scatter over set bits. A
            // freshly-routed eligible head always requests (RC never yields
            // "no route"), so the RC lanes merge straight into `want`.
            // `req`/`req_sa` words are dirty-tracked by `wantnz`/`rdynz`
            // and cleared surgically when consumed, never memset.
            let rovs = &mut vc_rov[gb0..gb0 + glen];
            let words = &front_word[gb0..gb0 + glen];
            let route_row = &tables.route[r * routers..(r + 1) * routers];
            for idx in 0..total_vcs {
                let g = base + idx;
                let gb = idx * k;
                let rg = &mut rovs[gb..gb + k];
                let wg = &words[gb..gb + k];
                let un = grp_unrouted[g];
                let no = grp_noovc[g];
                let head = grp_head[g];
                let e1 = grp_e1[g];
                let e0 = grp_e0[g];
                // Heads still unrouted this cycle take RC now.
                let rc = un & head;
                let need_rc = rc & rmask;
                // VA request: route known (or freshly routed this cycle —
                // RC never yields "no route"), no output VC yet, head
                // flit, eligible next cycle.
                let want = ((!un & no & head) | rc) & e1;
                // SA-ready: route + output VC known, eligible now. The
                // heads-wait-a-cycle-after-VA rule is folded into the
                // eligibility masks at grant time, and a same-cycle VA
                // grant can't make a head ready, so the set is complete
                // before VA runs.
                let rdy = !un & !no & e0;
                grp_unrouted[g] = un & !need_rc;
                let mut m = need_rc;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let route = route_row[word_dst(wg[l]) as usize];
                    rg[l] = (rg[l] & !ROV_ROUTE) | route as u32;
                }
                let mut m = want & rmask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let route = (rg[l] & ROV_ROUTE) as usize;
                    req[route * k + l] |= 1u64 << idx;
                    wantnz[route] |= 1u64 << l;
                }
                let mut m = rdy & rmask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let route = (rg[l] & ROV_ROUTE) as usize;
                    req_sa[route * k + l] |= 1u64 << idx;
                    rdynz[route] |= 1u64 << l;
                }
            }

            // --- VA ----------------------------------------------------
            // Free output VCs go to the first requesting input VC at or
            // after each lane's round-robin pointer (a wrapped
            // first-set-bit). The ovc-outer order is per-lane identical to
            // the scalar engine's ovc-inner loop — lanes are independent and
            // each lane still sees output VCs in ascending order — but lets
            // the free-lane mask skip (port, lane) pairs with nothing free
            // or nothing requested.
            for o in out_lo..out_hi {
                let lo_i = o - out_lo;
                let ro = lo_i * k;
                // Lanes whose request word is non-empty (scatter pass
                // tracked them; only `rmask` lanes ever set bits).
                let mut reqnz = std::mem::take(&mut wantnz[lo_i]);
                if reqnz == 0 {
                    continue;
                }
                let rq = &mut req[ro..ro + k];
                for ovc in 0..vcs {
                    let fo = o * vcs + ovc;
                    let mut m = ovc_free[fo] & reqnz;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let mw = rq[l];
                        let start = out_va_rr[o * k + l] as usize;
                        let at_or_after = mw & (u64::MAX << start);
                        let pick = if at_or_after != 0 {
                            at_or_after.trailing_zeros()
                        } else {
                            mw.trailing_zeros()
                        } as usize;
                        let next_word = mw & !(1u64 << pick);
                        rq[l] = next_word;
                        if next_word == 0 {
                            reqnz &= !(1u64 << l);
                        }
                        let lb = 1u64 << l;
                        ovc_free[fo] &= !lb;
                        let g = base + pick;
                        let gi = pick * k + l;
                        rovs[gi] = (rovs[gi] & ROV_ROUTE) | ((ovc as u32) << 16);
                        grp_noovc[g] &= !lb;
                        // Heads wait a cycle after allocation: drop this
                        // cycle's eligibility and reschedule for `t + 1`
                        // (the next-cycle view is unaffected).
                        if grp_e0[g] & lb != 0 {
                            grp_e0[g] &= !lb;
                            elig_wheel[es1].push(((g as u32) << 6) | l as u32);
                        }
                        let next = pick + 1;
                        out_va_rr[o * k + l] = if next == total_vcs { 0 } else { next } as u32;
                        if measure_mask & (1 << l) != 0 {
                            activity[r * k + l].vc_allocations += 1;
                        }
                    }
                    if reqnz == 0 {
                        break;
                    }
                }
                // Lanes still in `reqnz` hold ungranted request bits;
                // clear them so the array stays zero without a memset.
                while reqnz != 0 {
                    let l = reqnz.trailing_zeros() as usize;
                    reqnz &= reqnz - 1;
                    rq[l] = 0;
                }
            }

            // --- SA/ST -------------------------------------------------
            // The switch-ready masks were built in the first pass (see
            // `req_sa`); the pick loop resolves credits and the
            // one-winner-per-input rule per lane.

            // Input VCs of already-used input ports, as per-lane VC masks.
            let mut lm = rmask;
            while lm != 0 {
                let l = lm.trailing_zeros() as usize;
                lm &= lm - 1;
                used_vcs[l] = 0;
            }

            for o in out_lo..out_hi {
                let lo_i = o - out_lo;
                let ro = lo_i * k;
                // Lanes with any SA request for this output, from the
                // scatter pass; consumed (and the words zeroed) here.
                let mut lm = std::mem::take(&mut rdynz[lo_i]);
                while lm != 0 {
                    let l = lm.trailing_zeros() as usize;
                    lm &= lm - 1;
                    let mut m = std::mem::take(&mut req_sa[ro + l]) & !used_vcs[l];
                    let start = out_sa_rr[o * k + l] as usize;
                    let winner = loop {
                        if m == 0 {
                            break None;
                        }
                        let at_or_after = m & (u64::MAX << start);
                        let pick = if at_or_after != 0 {
                            at_or_after.trailing_zeros()
                        } else {
                            m.trailing_zeros()
                        } as usize;
                        let ovc = (rovs[pick * k + l] >> 16) as usize;
                        if ovc_credits[(o * vcs + ovc) * k + l] == 0 {
                            m &= !(1u64 << pick);
                            continue;
                        }
                        break Some((pick, ovc));
                    };
                    let Some((pick, ovc)) = winner else {
                        continue;
                    };
                    let (i8, v8) = pick_iv[pick];
                    let (i, v) = (i8 as usize, v8 as usize);
                    let gi = (base + pick) * k + l;
                    let gl = pick * k + l;
                    let next = pick + 1;
                    out_sa_rr[o * k + l] = if next == total_vcs { 0 } else { next } as u32;
                    used_vcs[l] |= input_mask << (i * vcs);
                    let word = front_word[gi];
                    let g = base + pick;
                    let lb = 1u64 << l;
                    vc_len[gi] -= 1;
                    if vc_len[gi] > 0 {
                        // Promote the next queued flit to the front arrays.
                        let (w, e) = if i == injection_local || ring_depth == 0 {
                            vc_buf[gi].pop_front().expect("queue non-empty")
                        } else {
                            let h = ring_head[gi] as usize;
                            let next = h + 1;
                            ring_head[gi] = if next == ring_depth { 0 } else { next } as u8;
                            ring[gi * ring_depth + h]
                        };
                        front_word[gi] = w;
                        grp_head[g] = (grp_head[g] & !lb) | if word_is_head(w) { lb } else { 0 };
                        // Re-derive the front's eligibility bits: queued
                        // flits became eligible at most 2 cycles out from
                        // their arrival, so `e ∈ {..t, t+1, t+2}`.
                        if e <= t32 {
                            grp_e0[g] |= lb;
                            grp_e1[g] |= lb;
                        } else {
                            debug_assert!(e <= t32 + 2);
                            grp_e0[g] &= !lb;
                            if e == t1 {
                                grp_e1[g] |= lb;
                                elig_wheel[es1].push(((g as u32) << 6) | l as u32);
                            } else {
                                grp_e1[g] &= !lb;
                                elig_wheel[es2].push(((g as u32) << 6) | l as u32);
                            }
                        }
                    } else {
                        front_word[gi] = FRONT_EMPTY;
                        grp_head[g] &= !lb;
                        grp_e0[g] &= !lb;
                        grp_e1[g] &= !lb;
                    }
                    let tail = word_is_tail(word);
                    let measure = measure_mask & (1 << l) != 0;

                    if measure {
                        let counters = &mut activity[r * k + l];
                        counters.crossbar_traversals += 1;
                        if i != injection_local {
                            counters.buffer_reads += 1;
                        }
                    }

                    if o == ejection {
                        // Flit leaves the network; completion at end of cycle.
                        let lane = &mut lanes[l];
                        let record = &mut lane.packets[word_packet(word) as usize];
                        if word_is_head(word) {
                            record.head_done = (t + 1) as u32;
                        }
                        if tail {
                            record.tail_done = (t + 1) as u32;
                            if measure {
                                lane.ejected_in_window += 1;
                            }
                            if record.measured {
                                lane.completed_measured += 1;
                                let latency = (t + 1) as u32 - record.created;
                                lane.latency_sum += latency as u64;
                                lane.max_latency = lane.max_latency.max(latency as u64);
                                lane.latencies.push(latency);
                                lane.head_latency_sum += (record.head_done - record.created) as u64;
                            }
                        }
                    } else {
                        ovc_credits[(o * vcs + ovc) * k + l] -= 1;
                        let span = tables.out_span[o] as usize;
                        // `1 + span < horizon`: one conditional wrap suffices.
                        let mut slot = slot0 + 1 + span;
                        if slot >= horizon {
                            slot -= horizon;
                        }
                        arrivals[slot].push(ArrivalEvent {
                            port: tables.out_dst_port[o],
                            vc: ovc as u16,
                            lane: l as u16,
                            word,
                        });
                        if measure {
                            activity[r * k + l].link_flit_segments += span as u64;
                            if trace_on {
                                link_flits[o * k + l] += 1;
                            }
                        }
                    }

                    if tail {
                        rovs[gl] = ROV_NONE;
                        grp_unrouted[g] |= lb;
                        grp_noovc[g] |= lb;
                        ovc_free[o * vcs + ovc] |= lb;
                    }
                    if vc_len[gi] == 0 && rovs[gl] & ROV_ROUTE == ROV_ROUTE {
                        active_inputs[r * k + l] -= 1;
                    }

                    // Return the freed buffer slot upstream (1-cycle wire).
                    let cb = tables.in_credit_base[in_lo + i];
                    if cb != NONE_U32 {
                        credit_wheel[credit_slot].push((cb + v as u32) * k as u32 + l as u32);
                    }
                }
            }
        }
    }

    /// Telemetry only: per-lane buffered-flit occupancy, sampled every 64
    /// measure-window cycles when tracing is on (the scalar cadence).
    fn sample_occupancy(&mut self) {
        let k = self.k;
        let vcs = self.tables.vcs;
        let mut mask = self.measure_mask;
        while mask != 0 {
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.lanes[l].occ_samples += 1;
            for r in 0..self.tables.routers {
                let lo = self.tables.in_port_off[r] as usize * vcs;
                let hi = self.tables.in_port_off[r + 1] as usize * vcs;
                let mut buffered = 0u64;
                for g in lo..hi {
                    buffered += self.vc_len[g * k + l] as u64;
                }
                self.occ_sum[r * k + l] += buffered;
            }
        }
    }

    fn finalize_lane(&mut self, l: usize, drained: bool) -> SimStats {
        let cycle = self.cycle;
        let k = self.k;
        let nodes = self.tables.routers;
        let activity = (0..nodes).map(|r| self.activity[r * k + l]).collect();
        let lane = &mut self.lanes[l];
        let completed = lane.completed_measured;
        let denom = completed.max(1) as f64;
        lane.latencies.sort_unstable();
        let pct = |q: f64| -> f64 {
            if lane.latencies.is_empty() {
                0.0
            } else {
                let idx = ((lane.latencies.len() - 1) as f64 * q).round() as usize;
                lane.latencies[idx] as f64
            }
        };
        let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
        SimStats {
            cycles: cycle,
            measure_cycles: lane.config.measure_cycles,
            nodes,
            measured_packets: lane.measured_total,
            completed_packets: completed,
            avg_packet_latency: lane.latency_sum as f64 / denom,
            avg_head_latency: lane.head_latency_sum as f64 / denom,
            max_packet_latency: lane.max_latency,
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            accepted_throughput: lane.ejected_in_window as f64
                / (lane.config.measure_cycles.max(1) as f64 * nodes as f64),
            offered_rate: lane.workload.injection_rate(),
            avg_flits_per_packet: lane.flit_sum as f64 / lane.measured_total.max(1) as f64,
            activity,
            drained,
        }
    }

    /// Telemetry only: the scalar engine's `sim.link` / `sim.router`
    /// series for one lane, emitted after every lane has finished (lane
    /// order matches K sequential scalar runs).
    fn emit_trace(&self, l: usize, stats: &SimStats) {
        use noc_trace::FieldValue;
        let k = self.k;
        let lane = &self.lanes[l];
        let tables = &self.tables;
        let measure = lane.config.measure_cycles.max(1) as f64;
        for r in 0..tables.routers_len() {
            let ejection = tables.ejection_port(r);
            for o in tables.output_ports(r) {
                if o == ejection || self.link_flits[o * k + l] == 0 {
                    continue;
                }
                let flits = self.link_flits[o * k + l];
                noc_trace::emit(
                    "series",
                    "sim.link",
                    vec![
                        ("src", FieldValue::U64(r as u64)),
                        ("dst", FieldValue::U64(tables.out_to_router(o) as u64)),
                        ("span", FieldValue::U64(tables.out_span(o) as u64)),
                        ("flits", FieldValue::U64(flits)),
                        ("util", FieldValue::F64(flits as f64 / measure)),
                    ],
                );
            }
            let counters = &stats.activity[r];
            let avg_occupancy = if lane.occ_samples == 0 {
                0.0
            } else {
                self.occ_sum[r * k + l] as f64 / lane.occ_samples as f64
            };
            noc_trace::emit(
                "series",
                "sim.router",
                vec![
                    ("router", FieldValue::U64(r as u64)),
                    (
                        "crossbar_util",
                        FieldValue::F64(counters.crossbar_traversals as f64 / measure),
                    ),
                    ("buffer_writes", FieldValue::U64(counters.buffer_writes)),
                    ("buffer_reads", FieldValue::U64(counters.buffer_reads)),
                    ("avg_occupancy", FieldValue::F64(avg_occupancy)),
                    ("occ_samples", FieldValue::U64(lane.occ_samples)),
                ],
            );
        }
    }

    /// Whether flat input port `port / vcs` of input VC group `g` is an
    /// injection port (NI queue): those stay on the deque path regardless
    /// of the ring, mirroring the push/pop site predicates.
    fn is_injection_group(tables: &NetTables, g: usize) -> bool {
        let port = g / tables.vcs;
        let r = tables.in_port_router[port] as usize;
        port == tables.injection_port(r)
    }

    /// Serializes the complete dynamic batch state (all K lanes) at the
    /// current cycle boundary into a versioned, digest-protected snapshot
    /// (kind [`BATCH_KIND`]). Restoring over the same topology and replica
    /// list and running to completion is bit-identical per lane to never
    /// having stopped. Call only between cycles (after construction or
    /// [`BatchSimulator::run_until`]).
    pub fn snapshot(&self) -> Vec<u8> {
        let tables = &self.tables;
        let k = self.k;
        let vcs = tables.vcs;
        let total_in_vcs = tables.total_inputs() * vcs;
        let mut w = Writer::new(BATCH_KIND);
        w.write_u64(k as u64);
        w.write_u64(tables.routers as u64);
        w.write_u64(vcs as u64);
        w.write_u64(total_in_vcs as u64);
        w.write_u64((tables.total_outputs() * vcs) as u64);
        w.write_u64(tables.total_outputs() as u64);
        w.write_u64(self.horizon);
        w.write_u64(self.ring_depth as u64);
        w.write_u64(self.cycle);
        w.write_u64(self.live);
        w.write_u64(self.masked_cycles);
        for lane in &self.lanes {
            w.write_u64(lane.config.fingerprint());
            w.write_u64(workload_fingerprint(&lane.workload));
            w.write_u64s(&lane.rng.state());
            w.write_u64(lane.measured_total);
            w.write_u64(lane.completed_measured);
            w.write_u64(lane.latency_sum);
            w.write_u64(lane.head_latency_sum);
            w.write_u64(lane.max_latency);
            w.write_u64(lane.flit_sum);
            w.write_u64(lane.ejected_in_window);
            w.write_u64(lane.occ_samples);
            w.write_len(lane.packets.len());
            for p in &lane.packets {
                w.write_u16(p.src);
                w.write_u16(p.dst);
                w.write_u32(p.flits);
                w.write_u32(p.created);
                w.write_u32(p.head_done);
                w.write_u32(p.tail_done);
                w.write_bool(p.measured);
            }
            w.write_u32s(&lane.latencies);
            match &lane.stats {
                None => w.write_u8(0),
                Some(stats) => {
                    w.write_u8(1);
                    stats.write_snapshot(&mut w);
                }
            }
        }
        for g in 0..total_in_vcs {
            let ring_queue = self.ring_depth > 0 && !Self::is_injection_group(tables, g);
            for l in 0..k {
                let gi = g * k + l;
                let len = self.vc_len[gi];
                w.write_u32(len);
                if len == 0 {
                    continue;
                }
                w.write_u64(self.front_word[gi]);
                let qlen = len as usize - 1;
                w.write_len(qlen);
                if ring_queue {
                    let head = self.ring_head[gi] as usize;
                    for j in 0..qlen {
                        let mut pos = head + j;
                        if pos >= self.ring_depth {
                            pos -= self.ring_depth;
                        }
                        let (word, elig) = self.ring[gi * self.ring_depth + pos];
                        w.write_u64(word);
                        w.write_u32(elig);
                    }
                } else {
                    debug_assert_eq!(self.vc_buf[gi].len(), qlen);
                    for &(word, elig) in self.vc_buf[gi].iter() {
                        w.write_u64(word);
                        w.write_u32(elig);
                    }
                }
            }
        }
        w.write_u32s(&self.vc_rov);
        w.write_u64s(&self.grp_unrouted);
        w.write_u64s(&self.grp_noovc);
        w.write_u64s(&self.grp_head);
        w.write_u64s(&self.grp_e0);
        w.write_u64s(&self.grp_e1);
        w.write_u64s(&self.ovc_free);
        for slot in &self.elig_wheel {
            w.write_u32s(slot);
        }
        w.write_u32s(&self.ovc_credits);
        w.write_u32s(&self.out_va_rr);
        w.write_u32s(&self.out_sa_rr);
        w.write_u32s(&self.active_inputs);
        for slot in &self.credit_wheel {
            w.write_u32s(slot);
        }
        for bucket in &self.arrivals {
            w.write_len(bucket.len());
            for ev in bucket {
                w.write_u32(ev.port);
                w.write_u16(ev.vc);
                w.write_u16(ev.lane);
                w.write_u64(ev.word);
            }
        }
        w.write_len(self.activity.len());
        for a in &self.activity {
            a.write_snapshot(&mut w);
        }
        w.write_u64s(&self.link_flits);
        w.write_u64s(&self.occ_sum);
        w.finish()
    }

    /// Rebuilds a batch from a [`BatchSimulator::snapshot`], re-solving the
    /// topology like [`BatchSimulator::new`]. The replica list must be the
    /// one the snapshot was taken under (validated per lane by config and
    /// workload fingerprints).
    pub fn restore(
        topology: &MeshTopology,
        replicas: Vec<(Workload, SimConfig)>,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        Self::new(topology, replicas).apply_snapshot(bytes)
    }

    /// Like [`BatchSimulator::restore`], but over pre-built shared tables
    /// (the [`BatchSimulator::with_tables`] counterpart).
    pub fn restore_with_tables(
        tables: Arc<NetTables>,
        replicas: Vec<(Workload, SimConfig)>,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        Self::with_tables(tables, replicas).apply_snapshot(bytes)
    }

    fn apply_snapshot(mut self, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes, BATCH_KIND)?;
        let k = self.k;
        let vcs = self.tables.vcs;
        let routers = self.tables.routers;
        let total_in_vcs = self.tables.total_inputs() * vcs;
        let total_out_vcs = self.tables.total_outputs() * vcs;
        let total_outputs = self.tables.total_outputs();
        for (field, expected) in [
            ("lane count", k),
            ("router count", routers),
            ("vc count", vcs),
            ("input vc count", total_in_vcs),
            ("output vc count", total_out_vcs),
            ("output port count", total_outputs),
            ("event horizon", self.horizon as usize),
            ("ring depth", self.ring_depth),
        ] {
            if r.read_u64()? != expected as u64 {
                return Err(SnapshotError::Mismatch { field });
            }
        }
        self.cycle = r.read_u64()?;
        self.live = r.read_u64()?;
        if k < 64 && self.live >> k != 0 {
            return Err(SnapshotError::Corrupt { field: "live mask" });
        }
        self.masked_cycles = r.read_u64()?;
        for lane in self.lanes.iter_mut() {
            if r.read_u64()? != lane.config.fingerprint() {
                return Err(SnapshotError::Mismatch {
                    field: "lane config",
                });
            }
            if r.read_u64()? != workload_fingerprint(&lane.workload) {
                return Err(SnapshotError::Mismatch {
                    field: "lane workload",
                });
            }
            let state = r.read_u64s()?;
            let state: [u64; 4] = state.try_into().map_err(|_| SnapshotError::Corrupt {
                field: "lane rng state",
            })?;
            lane.rng = SmallRng::from_state(state);
            lane.measured_total = r.read_u64()?;
            lane.completed_measured = r.read_u64()?;
            lane.latency_sum = r.read_u64()?;
            lane.head_latency_sum = r.read_u64()?;
            lane.max_latency = r.read_u64()?;
            lane.flit_sum = r.read_u64()?;
            lane.ejected_in_window = r.read_u64()?;
            lane.occ_samples = r.read_u64()?;
            let packet_count = r.read_len(21)?;
            lane.packets.clear();
            lane.packets.reserve(packet_count);
            for _ in 0..packet_count {
                lane.packets.push(PacketRecord {
                    src: r.read_u16()?,
                    dst: r.read_u16()?,
                    flits: r.read_u32()?,
                    created: r.read_u32()?,
                    head_done: r.read_u32()?,
                    tail_done: r.read_u32()?,
                    measured: r.read_bool()?,
                });
            }
            lane.latencies = r.read_u32s()?;
            lane.stats = match r.read_u8()? {
                0 => None,
                1 => Some(SimStats::read_snapshot(&mut r)?),
                _ => {
                    return Err(SnapshotError::Corrupt {
                        field: "lane stats tag",
                    })
                }
            };
        }
        for g in 0..total_in_vcs {
            let ring_queue = self.ring_depth > 0 && !Self::is_injection_group(&self.tables, g);
            for l in 0..k {
                let gi = g * k + l;
                let len = r.read_u32()?;
                self.vc_len[gi] = len;
                self.vc_buf[gi].clear();
                if len == 0 {
                    self.front_word[gi] = FRONT_EMPTY;
                    continue;
                }
                self.front_word[gi] = r.read_u64()?;
                let qlen = r.read_len(12)?;
                if qlen != len as usize - 1 {
                    return Err(SnapshotError::Corrupt {
                        field: "vc queue length",
                    });
                }
                if ring_queue {
                    // Restored queues start at ring position 0; the stored
                    // order is the logical (head-first) order, which is all
                    // the pop path observes.
                    if qlen >= self.ring_depth && qlen > 0 {
                        return Err(SnapshotError::Corrupt {
                            field: "ring queue length",
                        });
                    }
                    self.ring_head[gi] = 0;
                    for j in 0..qlen {
                        let word = r.read_u64()?;
                        let elig = r.read_u32()?;
                        self.ring[gi * self.ring_depth + j] = (word, elig);
                    }
                } else {
                    self.vc_buf[gi].reserve(qlen);
                    for _ in 0..qlen {
                        let word = r.read_u64()?;
                        let elig = r.read_u32()?;
                        self.vc_buf[gi].push_back((word, elig));
                    }
                }
            }
        }
        let vc_rov = r.read_u32s()?;
        if vc_rov.len() != total_in_vcs * k {
            return Err(SnapshotError::Mismatch {
                field: "route/output-vc array",
            });
        }
        self.vc_rov = vc_rov;
        for (field, dst, expected) in [
            ("unrouted masks", &mut self.grp_unrouted, total_in_vcs),
            ("no-ovc masks", &mut self.grp_noovc, total_in_vcs),
            ("head masks", &mut self.grp_head, total_in_vcs),
            ("eligible-now masks", &mut self.grp_e0, total_in_vcs),
            ("eligible-next masks", &mut self.grp_e1, total_in_vcs),
            ("free output vcs", &mut self.ovc_free, total_out_vcs),
        ] {
            let vs = r.read_u64s()?;
            if vs.len() != expected {
                return Err(SnapshotError::Mismatch { field });
            }
            *dst = vs;
        }
        for slot in self.elig_wheel.iter_mut() {
            *slot = r.read_u32s()?;
            if slot
                .iter()
                .any(|&e| (e >> 6) as usize >= total_in_vcs || (e & 63) as usize >= k)
            {
                return Err(SnapshotError::Corrupt {
                    field: "eligibility wheel entry",
                });
            }
        }
        for (field, dst, expected) in [
            (
                "output vc credits",
                &mut self.ovc_credits,
                total_out_vcs * k,
            ),
            ("va round-robin", &mut self.out_va_rr, total_outputs * k),
            ("sa round-robin", &mut self.out_sa_rr, total_outputs * k),
            ("active input counts", &mut self.active_inputs, routers * k),
        ] {
            let vs = r.read_u32s()?;
            if vs.len() != expected {
                return Err(SnapshotError::Mismatch { field });
            }
            *dst = vs;
        }
        for slot in self.credit_wheel.iter_mut() {
            *slot = r.read_u32s()?;
            if slot.iter().any(|&c| c as usize >= total_out_vcs * k) {
                return Err(SnapshotError::Corrupt {
                    field: "credit wheel entry",
                });
            }
        }
        for bucket in self.arrivals.iter_mut() {
            bucket.clear();
            let events = r.read_len(16)?;
            bucket.reserve(events);
            for _ in 0..events {
                let port = r.read_u32()?;
                let vc = r.read_u16()?;
                let lane = r.read_u16()?;
                let word = r.read_u64()?;
                if port as usize * vcs >= total_in_vcs || vc as usize >= vcs || lane as usize >= k {
                    return Err(SnapshotError::Corrupt {
                        field: "arrival event",
                    });
                }
                bucket.push(ArrivalEvent {
                    port,
                    vc,
                    lane,
                    word,
                });
            }
        }
        let activity_len = r.read_len(40)?;
        if activity_len != routers * k {
            return Err(SnapshotError::Mismatch {
                field: "activity counters",
            });
        }
        self.activity.clear();
        self.activity.reserve(routers * k);
        for _ in 0..routers * k {
            self.activity.push(ActivityCounters::read_snapshot(&mut r)?);
        }
        let link_flits = r.read_u64s()?;
        let occ_sum = r.read_u64s()?;
        if !link_flits.is_empty() && link_flits.len() != total_outputs * k {
            return Err(SnapshotError::Mismatch {
                field: "link flits",
            });
        }
        if !occ_sum.is_empty() && occ_sum.len() != routers * k {
            return Err(SnapshotError::Mismatch {
                field: "occupancy sums",
            });
        }
        // Telemetry follows the current sink state (see the scalar engine).
        if self.trace_on {
            self.link_flits = if link_flits.is_empty() {
                vec![0; total_outputs * k]
            } else {
                link_flits
            };
            self.occ_sum = if occ_sum.is_empty() {
                vec![0; routers * k]
            } else {
                occ_sum
            };
        } else {
            self.link_flits = Vec::new();
            self.occ_sum = Vec::new();
        }
        r.finish()?;
        Ok(self)
    }
}
