//! Simulator configuration.

use noc_routing::HopWeights;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Flit width `b` in bits (set by the link limit: `b = base/C`).
    pub flit_bits: u32,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Buffer depth per VC in flits.
    pub buffer_flits_per_vc: usize,
    /// Hop cost parameters (the 3-stage pipeline realises
    /// `router_cycles = 3`; other values are not supported by the pipeline
    /// and only affect the analytic cross-checks).
    pub weights: HopWeights,
    /// Cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
    /// Hard cap on post-measurement drain time.
    pub drain_cycles_max: u64,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
}

impl SimConfig {
    /// A reasonable default for latency measurements on the paper's setups:
    /// 2 VCs, 4-flit buffers, 5k warmup + 20k measurement cycles.
    pub fn latency_run(flit_bits: u32, seed: u64) -> Self {
        SimConfig {
            flit_bits,
            vcs_per_port: 2,
            buffer_flits_per_vc: 4,
            weights: HopWeights::PAPER,
            warmup_cycles: 5_000,
            measure_cycles: 20_000,
            drain_cycles_max: 200_000,
            seed,
        }
    }

    /// A shorter configuration for throughput sweeps (no full drain is
    /// needed; accepted rate is read off the measurement window).
    pub fn throughput_run(flit_bits: u32, seed: u64) -> Self {
        SimConfig {
            warmup_cycles: 3_000,
            measure_cycles: 10_000,
            drain_cycles_max: 0,
            ..Self::latency_run(flit_bits, seed)
        }
    }

    /// Sets the per-VC buffer depth so that a router with `ports` network
    /// ports stays within a fixed bit budget — the paper equalises total
    /// buffer size across schemes so no scheme gains an unfair buffering
    /// advantage (§4.6).
    pub fn with_buffer_budget(mut self, total_bits: u64, ports: usize) -> Self {
        let per_vc_bits = total_bits / (ports.max(1) as u64 * self.vcs_per_port as u64);
        self.buffer_flits_per_vc = (per_vc_bits / self.flit_bits as u64).max(1) as usize;
        self
    }

    /// Stable FNV-1a fingerprint of every field. The simulator is fully
    /// deterministic given its config, topology, and workload, so equal
    /// fingerprints (plus equal topology/workload keys) imply bit-identical
    /// statistics — the contract the service result cache relies on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = noc_model::fingerprint::Fnv1a::with_tag("sim-config");
        h.write_u32(self.flit_bits);
        h.write_u64(self.vcs_per_port as u64);
        h.write_u64(self.buffer_flits_per_vc as u64);
        h.write_bytes(&self.weights.router_cycles.to_le_bytes());
        h.write_bytes(&self.weights.unit_link_cycles.to_le_bytes());
        h.write_u64(self.warmup_cycles);
        h.write_u64(self.measure_cycles);
        h.write_u64(self.drain_cycles_max);
        h.write_u64(self.seed);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::latency_run(256, 7);
        assert_eq!(c.flit_bits, 256);
        assert!(c.vcs_per_port >= 1);
        assert!(c.buffer_flits_per_vc >= 1);
        assert_eq!(c.weights, HopWeights::PAPER);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SimConfig::latency_run(256, 7);
        let b = SimConfig::latency_run(256, 7);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            SimConfig::latency_run(256, 8).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            SimConfig::latency_run(128, 7).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            SimConfig::throughput_run(256, 7).fingerprint()
        );
    }

    #[test]
    fn buffer_budget_divides_evenly() {
        // 8 KiB of buffering, 4 ports, 2 VCs, 256-bit flits:
        // 65536 / (4·2) = 8192 bits per VC = 32 flits.
        let c = SimConfig::latency_run(256, 0).with_buffer_budget(65_536, 4);
        assert_eq!(c.buffer_flits_per_vc, 32);
        // Narrower flits get deeper buffers from the same budget.
        let c2 = SimConfig::latency_run(64, 0).with_buffer_budget(65_536, 4);
        assert_eq!(c2.buffer_flits_per_vc, 128);
        // Never rounds to zero.
        let c3 = SimConfig::latency_run(256, 0).with_buffer_budget(64, 16);
        assert_eq!(c3.buffer_flits_per_vc, 1);
    }
}
