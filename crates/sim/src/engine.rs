//! The cycle-driven simulation engine.
//!
//! Each cycle executes, in order: credit returns, link arrivals (BW),
//! injection, RC + VA, and SA/ST. The stage gating reproduces the 3-stage
//! pipeline timing: a flit buffer-written at cycle `t` may be VC-allocated
//! at `t+1` and switch-traverse at `t+2`; a flit issued at `u` lands in the
//! downstream buffer at `u + 1 + span`, making an uncontended hop cost
//! exactly `T_r + span·T_l = 3 + span` cycles buffer-to-buffer.
//!
//! Hot path. The loop allocates nothing per cycle: in-flight flits live in
//! a fixed event wheel of `max_span + 2` buckets indexed by `cycle %
//! horizon` (a flit issued at `t` arrives at `t + 1 + span`, so no pending
//! arrival ever wraps onto the bucket being drained), credit returns use a
//! two-slot wheel (always a 1-cycle wire delay), injection reuses a scratch
//! vector, and routers whose `active_inputs` count is zero are skipped
//! entirely — safe because round-robin pointers only advance on
//! assignments, which require an active input VC.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketRecord};
use crate::network::{NetTables, Network, NONE_U16, NONE_U32};
use crate::stats::{ActivityCounters, SimStats};
use noc_model::fingerprint::Fnv1a;
use noc_rng::rngs::SmallRng;
use noc_rng::SeedableRng;
use noc_routing::DorRouter;
use noc_snapshot::{Reader, SnapshotError, Writer};
use noc_topology::MeshTopology;
use noc_traffic::{Trace, Workload};
use std::sync::Arc;

/// Where injected packets come from: a stochastic workload or a recorded
/// trace replayed cycle-exactly.
enum Source {
    Workload(Workload),
    Trace { trace: Trace, next: usize },
}

/// A flit in flight on a link, parked in the event wheel until its arrival
/// cycle.
#[derive(Debug, Clone, Copy)]
struct ArrivalEvent {
    /// Destination flat input port.
    port: u32,
    /// Destination VC (the allocated downstream VC).
    vc: u16,
    /// The flit itself.
    flit: Flit,
}

/// Reusable run-to-run scratch storage: the packet ledger and latency
/// sample vector a [`Simulator::run_with_scratch`] call borrows its
/// capacity from and returns it to. Replicated runs (sweeps, replicated
/// experiment points) reuse one scratch instead of growing fresh vectors
/// from empty each time.
#[derive(Debug, Default)]
pub struct SimScratch {
    packets: Vec<PacketRecord>,
    latencies: Vec<u32>,
}

impl SimScratch {
    /// An empty scratch; capacity grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A cycle-level simulation of one workload on one topology.
pub struct Simulator {
    network: Network,
    config: SimConfig,
    source: Source,
    rng: SmallRng,
    cycle: u64,
    packets: Vec<PacketRecord>,
    latencies: Vec<u32>,
    /// Injection scratch: `(src node, bits, dst)` gathered per cycle.
    pending: Vec<(u32, u32, u32)>,
    /// Link-arrival event wheel; bucket `t % horizon` holds cycle-`t`
    /// arrivals.
    arrivals: Vec<Vec<ArrivalEvent>>,
    /// Credit-return wheel: a credit issued at `t` applies at `t+1`, so two
    /// slots indexed by `cycle & 1` suffice. Entries are flat output-VC
    /// indices.
    credit_wheel: [Vec<u32>; 2],
    /// Per-local-output-port request masks (one bit per input VC of the
    /// router being processed), rebuilt by the VA and SA stages each cycle.
    req: Vec<u128>,
    horizon: u64,
    /// Expected packet-ledger size, from the injection rate and window.
    est_packets: usize,
    /// Expected measured-sample count.
    est_latencies: usize,
    activity: Vec<ActivityCounters>,
    measured_total: u64,
    completed_measured: u64,
    latency_sum: u64,
    head_latency_sum: u64,
    max_latency: u64,
    flit_sum: u64,
    ejected_in_window: u64,
    /// Whether the global trace sink was enabled when this simulator was
    /// built. Telemetry below only ever *reads* simulation state — the
    /// RNG stream, arbitration, and [`SimStats`] are bit-identical with
    /// tracing on or off (pinned by the golden-fingerprint tests).
    trace_on: bool,
    /// Per-output-port flits traversed inside the measure window
    /// (telemetry only; empty when tracing is off).
    link_flits: Vec<u64>,
    /// Per-router buffered-flit occupancy, summed over samples taken every
    /// 64 cycles of the measure window (telemetry only).
    occ_sum: Vec<u64>,
    /// Number of occupancy samples taken.
    occ_samples: u64,
    /// Terminal verdict once the run schedule has completed: `Some(drained)`
    /// after the first post-step state where the measurement window is over
    /// and either every measured packet drained or the drain budget ran out.
    /// Kept so [`Simulator::run_until`] / [`Simulator::finish`] never step
    /// past the exact cycle the one-shot loop would have stopped at.
    done: Option<bool>,
    /// Whether this simulator was restored from a snapshot. Restored runs
    /// own their packet ledger already, so the scratch swap in
    /// [`Simulator::run_with_scratch`] is skipped to preserve it.
    resumed: bool,
}

/// Snapshot kind tag for scalar [`Simulator`] snapshots.
pub const SIM_KIND: &str = "sim-scalar";

/// Order-sensitive FNV-1a fingerprint of a workload: matrix side and rates,
/// injection rate, and the packet-size mix. Used to pair a snapshot with the
/// workload it must be resumed under.
pub fn workload_fingerprint(w: &Workload) -> u64 {
    let mut fp = Fnv1a::with_tag("sim-workload");
    fp.write_u64(w.matrix().side() as u64);
    for &rate in w.matrix().as_slice() {
        fp.write_f64(rate);
    }
    fp.write_f64(w.injection_rate());
    for class in w.mix().classes() {
        fp.write_u32(class.bits);
        fp.write_f64(class.fraction);
    }
    fp.finish()
}

/// Order-sensitive FNV-1a fingerprint of a recorded trace (side and every
/// injection event). Used to pair a snapshot with its replay source.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut fp = Fnv1a::with_tag("sim-trace");
    fp.write_u64(trace.side() as u64);
    fp.write_u64(trace.events().len() as u64);
    for e in trace.events() {
        fp.write_u64(e.cycle);
        fp.write_u64(e.src as u64);
        fp.write_u64(e.dst as u64);
        fp.write_u32(e.bits);
    }
    fp.finish()
}

fn write_flit(w: &mut Writer, f: Flit) {
    w.write_u32(f.packet);
    w.write_u16(f.seq);
    w.write_bool(f.tail);
    w.write_u16(f.dst);
}

fn read_flit(r: &mut Reader) -> Result<Flit, SnapshotError> {
    Ok(Flit {
        packet: r.read_u32()?,
        seq: r.read_u16()?,
        tail: r.read_bool()?,
        dst: r.read_u16()?,
    })
}

fn hash_flit(fp: &mut Fnv1a, f: Flit) {
    fp.write_u32(f.packet);
    fp.write_u32(f.seq as u32 | (f.dst as u32) << 16);
    fp.write_u32(f.tail as u32);
}

impl Simulator {
    /// Builds a simulator for a topology and workload. The DOR routing solve
    /// is performed internally with the config's hop weights.
    pub fn new(topology: &MeshTopology, workload: Workload, config: SimConfig) -> Self {
        let dor = DorRouter::new(topology, config.weights);
        Self::with_router(topology, &dor, workload, config)
    }

    /// Builds a simulator reusing an existing routing solve.
    pub fn with_router(
        topology: &MeshTopology,
        dor: &DorRouter,
        workload: Workload,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            workload.matrix().side(),
            topology.side(),
            "workload and topology sizes must match"
        );
        Self::with_source(topology, dor, Source::Workload(workload), config)
    }

    /// Builds a simulator over pre-built shared network tables (see
    /// [`NetTables`]): the routing solve and port wiring are reused
    /// read-only, so a sweep or batch builds them once per topology.
    /// Statistics are bit-identical to [`Simulator::new`].
    pub fn with_tables(tables: Arc<NetTables>, workload: Workload, config: SimConfig) -> Self {
        assert_eq!(
            workload.matrix().side(),
            tables.side,
            "workload and topology sizes must match"
        );
        let network = Network::from_tables(tables, &config);
        Self::from_network(network, Source::Workload(workload), config)
    }

    /// Builds a simulator that replays a recorded [`Trace`] cycle-exactly
    /// (the packet stream is deterministic; the RNG only breaks arbitration
    /// ties, of which the engine has none — runs are fully reproducible).
    pub fn from_trace(topology: &MeshTopology, trace: Trace, config: SimConfig) -> Self {
        assert_eq!(
            trace.side(),
            topology.side(),
            "trace and topology sizes must match"
        );
        let dor = DorRouter::new(topology, config.weights);
        Self::with_source(topology, &dor, Source::Trace { trace, next: 0 }, config)
    }

    fn with_source(
        topology: &MeshTopology,
        dor: &DorRouter,
        source: Source,
        config: SimConfig,
    ) -> Self {
        let network = Network::build(topology, dor, &config);
        Self::from_network(network, source, config)
    }

    fn from_network(network: Network, source: Source, config: SimConfig) -> Self {
        let routers = network.routers_len();
        // Arrivals land `1..=1 + max_span` cycles out, so `max_span + 2`
        // buckets keep every pending event clear of the bucket being
        // drained.
        let horizon = network.max_span() as u64 + 2;
        let max_outputs = (0..routers)
            .map(|r| network.output_ports(r).len())
            .max()
            .unwrap_or(0);
        let (est_packets, est_latencies) = match &source {
            Source::Workload(w) => {
                let per_cycle = w.injection_rate() * routers as f64;
                let window = (config.warmup_cycles + config.measure_cycles) as f64;
                let expect = (per_cycle * window).ceil() as usize;
                let measured = (per_cycle * config.measure_cycles as f64).ceil() as usize;
                (expect + expect / 8 + 64, measured + measured / 8 + 16)
            }
            Source::Trace { trace, .. } => (trace.events().len(), trace.events().len()),
        };
        let trace_on = noc_trace::enabled();
        let total_outputs = network.tables.out_port_off[routers] as usize;
        Simulator {
            network,
            config,
            source,
            rng: SmallRng::seed_from_u64(config.seed),
            cycle: 0,
            packets: Vec::new(),
            latencies: Vec::new(),
            pending: Vec::new(),
            arrivals: vec![Vec::new(); horizon as usize],
            credit_wheel: [Vec::new(), Vec::new()],
            req: vec![0u128; max_outputs],
            horizon,
            est_packets,
            est_latencies,
            activity: vec![ActivityCounters::default(); routers],
            measured_total: 0,
            completed_measured: 0,
            latency_sum: 0,
            head_latency_sum: 0,
            max_latency: 0,
            flit_sum: 0,
            ejected_in_window: 0,
            trace_on,
            link_flits: if trace_on {
                vec![0; total_outputs]
            } else {
                Vec::new()
            },
            occ_sum: if trace_on {
                vec![0; routers]
            } else {
                Vec::new()
            },
            occ_samples: 0,
            done: None,
            resumed: false,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn in_measure_window(&self) -> bool {
        self.cycle >= self.config.warmup_cycles
            && self.cycle < self.config.warmup_cycles + self.config.measure_cycles
    }

    /// Runs the full warmup + measurement + drain schedule and returns the
    /// collected statistics.
    pub fn run(self) -> SimStats {
        self.run_with_scratch(&mut SimScratch::new())
    }

    /// Like [`run`](Self::run), but borrows the packet ledger and latency
    /// vector capacity from `scratch` and returns it (cleared) afterwards,
    /// so replicated runs do not re-grow them from empty. Statistics are
    /// bit-identical to [`run`](Self::run).
    pub fn run_with_scratch(mut self, scratch: &mut SimScratch) -> SimStats {
        // A restored simulator already owns its (partially filled) packet
        // ledger; swapping scratch in would discard it.
        let use_scratch = !self.resumed;
        if use_scratch {
            std::mem::swap(&mut self.packets, &mut scratch.packets);
            std::mem::swap(&mut self.latencies, &mut scratch.latencies);
            self.packets.clear();
            self.latencies.clear();
            self.packets.reserve(self.est_packets);
            self.latencies.reserve(self.est_latencies);
        }

        let drained = loop {
            if let Some(drained) = self.advance() {
                break drained;
            }
        };

        let stats = self.compute_stats(drained);
        if self.trace_on {
            self.emit_trace(&stats);
        }
        if use_scratch {
            self.packets.clear();
            self.latencies.clear();
            std::mem::swap(&mut self.packets, &mut scratch.packets);
            std::mem::swap(&mut self.latencies, &mut scratch.latencies);
        }
        stats
    }

    /// Steps one cycle unless the run schedule already completed; returns
    /// the terminal verdict (`Some(drained)`) once the run is over. The
    /// stepping sequence is exactly the one-shot loop's: step, then check
    /// whether the window has closed and either all measured packets
    /// drained or the drain budget is exhausted. Idempotent once terminal.
    fn advance(&mut self) -> Option<bool> {
        if self.done.is_some() {
            return self.done;
        }
        self.step();
        if self.cycle >= self.config.warmup_cycles + self.config.measure_cycles {
            let drained = self.completed_measured == self.measured_total;
            let hard_end = self.config.warmup_cycles
                + self.config.measure_cycles
                + self.config.drain_cycles_max;
            if drained || self.cycle >= hard_end {
                self.done = Some(drained);
            }
        }
        self.done
    }

    /// Runs until the cycle counter reaches `target_cycle` or the schedule
    /// completes, whichever comes first. Returns `Some(drained)` once the
    /// run is over (no further cycles are simulated after that point), and
    /// `None` at an intermediate cycle boundary — a safe point to call
    /// [`Simulator::snapshot`]. Interleaving `run_until` calls at any cycle
    /// granularity is bit-identical to [`Simulator::run`].
    pub fn run_until(&mut self, target_cycle: u64) -> Option<bool> {
        while self.done.is_none() && self.cycle < target_cycle {
            self.advance();
        }
        self.done
    }

    /// Runs the remaining schedule to completion and returns the collected
    /// statistics. `run_until` followed by `finish` (possibly across a
    /// snapshot/restore boundary) is bit-identical to [`Simulator::run`].
    pub fn finish(mut self) -> SimStats {
        let drained = loop {
            if let Some(drained) = self.advance() {
                break drained;
            }
        };
        let stats = self.compute_stats(drained);
        if self.trace_on {
            self.emit_trace(&stats);
        }
        stats
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let t = self.cycle;
        if self.trace_on && (t & 4095) == 0 {
            // Rolling state-hash series: the digest of the exact engine
            // state at this cycle boundary. A run restored from a snapshot
            // emits the same values — divergence pinpoints the first 4096-
            // cycle block where two runs differ. Telemetry only: reads
            // state, mutates nothing.
            noc_trace::emit(
                "series",
                "sim.state_hash",
                vec![
                    ("cycle", noc_trace::FieldValue::U64(t)),
                    ("hash", noc_trace::FieldValue::U64(self.state_hash())),
                ],
            );
        }
        self.apply_credits(t);
        self.process_arrivals(t);
        self.inject(t);
        self.route_and_allocate(t);
        self.switch_traversal(t);
        if self.trace_on && (t & 63) == 0 && self.in_measure_window() {
            self.sample_occupancy();
        }
        self.cycle = t + 1;
    }

    /// Telemetry only: accumulates the number of buffered flits per router
    /// (sampled every 64 measure-window cycles when tracing is on).
    fn sample_occupancy(&mut self) {
        self.occ_samples += 1;
        let net = &self.network;
        let vcs = net.tables.vcs;
        for r in 0..net.tables.routers {
            let lo = net.tables.in_port_off[r] as usize * vcs;
            let hi = net.tables.in_port_off[r + 1] as usize * vcs;
            let mut buffered = 0u64;
            for g in lo..hi {
                buffered += net.vc_len[g] as u64;
            }
            self.occ_sum[r] += buffered;
        }
    }

    fn apply_credits(&mut self, t: u64) {
        let Simulator {
            network: net,
            credit_wheel,
            ..
        } = self;
        let slot = &mut credit_wheel[(t & 1) as usize];
        for &ovc in slot.iter() {
            net.ovc_credits[ovc as usize] += 1;
        }
        slot.clear();
    }

    fn process_arrivals(&mut self, t: u64) {
        let measure = self.in_measure_window();
        let slot = (t % self.horizon) as usize;
        let Simulator {
            network: net,
            activity,
            arrivals,
            ..
        } = self;
        let vcs = net.tables.vcs;
        let bucket = &mut arrivals[slot];
        for ev in bucket.iter() {
            let g = ev.port as usize * vcs + ev.vc as usize;
            net.push_flit(g, ev.flit, t + 2);
            if measure {
                activity[net.tables.in_port_router[ev.port as usize] as usize].buffer_writes += 1;
            }
        }
        bucket.clear();
    }

    fn inject(&mut self, t: u64) {
        let nodes = self.network.routers_len();
        // Gather this cycle's injections from the source.
        self.pending.clear();
        match &mut self.source {
            Source::Workload(workload) => {
                for node in 0..nodes {
                    if let Some(spec) = workload.generate(node, &mut self.rng) {
                        self.pending.push((node as u32, spec.bits, spec.dst as u32));
                    }
                }
            }
            Source::Trace { trace, next } => {
                let events = trace.events();
                while *next < events.len() && events[*next].cycle <= t {
                    let e = events[*next];
                    *next += 1;
                    self.pending.push((e.src as u32, e.bits, e.dst as u32));
                }
            }
        }
        let measure = self.in_measure_window();
        let flit_bits = self.config.flit_bits;
        let Simulator {
            network: net,
            packets,
            pending,
            measured_total,
            flit_sum,
            ..
        } = self;
        let vcs = net.tables.vcs;
        for &(node, bits, dst) in pending.iter() {
            let node = node as usize;
            let flits = bits.div_ceil(flit_bits).max(1);
            let packet_id = packets.len() as u32;
            packets.push(PacketRecord {
                src: node as u16,
                dst: dst as u16,
                flits,
                created: t as u32,
                head_done: crate::flit::PENDING,
                tail_done: crate::flit::PENDING,
                measured: measure,
            });
            if measure {
                *measured_total += 1;
                *flit_sum += flits as u64;
            }
            // Enqueue into the least-loaded injection VC (the NI's queues).
            let inj = net.tables.in_port_off[node + 1] as usize - 1;
            let vc_idx = (0..vcs)
                .min_by_key(|&v| net.vc_len[inj * vcs + v])
                .expect("at least one VC");
            let g = inj * vcs + vc_idx;
            for seq in 0..flits {
                net.push_flit(
                    g,
                    Flit {
                        packet: packet_id,
                        seq: seq as u16,
                        tail: seq + 1 == flits,
                        dst: dst as u16,
                    },
                    t + 2,
                );
            }
        }
    }

    fn route_and_allocate(&mut self, t: u64) {
        let measure = self.in_measure_window();
        let Simulator {
            network: net,
            activity,
            req,
            ..
        } = self;
        let vcs = net.tables.vcs;
        let routers = net.tables.routers;
        // `r` indexes several parallel SoA arrays, not just `activity` — a
        // range loop is the honest shape here.
        #[allow(clippy::needless_range_loop)]
        for r in 0..routers {
            if net.active_inputs[r] == 0 {
                continue;
            }
            let in_lo = net.tables.in_port_off[r] as usize;
            let in_hi = net.tables.in_port_off[r + 1] as usize;
            let base = in_lo * vcs;
            let total_vcs = (in_hi - in_lo) * vcs;
            let out_lo = net.tables.out_port_off[r] as usize;
            let out_hi = net.tables.out_port_off[r + 1] as usize;

            if total_vcs <= 128 {
                // Fused RC + request-mask build: one pass over the input VCs
                // computes routes and records, per local output port, a bit
                // per input VC that requests a downstream VC this cycle.
                for m in req[..out_hi - out_lo].iter_mut() {
                    *m = 0;
                }
                for idx in 0..total_vcs {
                    let g = base + idx;
                    let mut route = net.vc_route[g];
                    let head = net.front_flit[g].is_head();
                    if route == NONE_U16 {
                        if !head {
                            continue;
                        }
                        route = net.tables.route[r * routers + net.front_flit[g].dst as usize];
                        net.vc_route[g] = route;
                    }
                    if net.vc_out_vc[g] == NONE_U16 && head && t + 1 >= net.front_eligible[g] {
                        req[route as usize] |= 1u128 << idx;
                    }
                }
                // VA: first requesting VC at or after the round-robin pointer
                // is a wrapped first-set-bit lookup.
                for o in out_lo..out_hi {
                    let o_local = o - out_lo;
                    for ovc in 0..vcs {
                        let ov = o * vcs + ovc;
                        if net.ovc_owner[ov] != NONE_U32 {
                            continue;
                        }
                        let m = req[o_local];
                        if m == 0 {
                            break;
                        }
                        let start = net.out_va_rr[o] as usize;
                        let at_or_after = m & (u128::MAX << start);
                        let pick = if at_or_after != 0 {
                            at_or_after.trailing_zeros()
                        } else {
                            m.trailing_zeros()
                        } as usize;
                        let g = base + pick;
                        req[o_local] &= !(1u128 << pick);
                        net.ovc_owner[ov] = g as u32;
                        net.vc_out_vc[g] = ovc as u16;
                        net.vc_va_done[g] = t;
                        let next = pick + 1;
                        net.out_va_rr[o] = if next == total_vcs { 0 } else { next } as u32;
                        if measure {
                            activity[r].vc_allocations += 1;
                        }
                    }
                }
                continue;
            }

            // Wide-router fallback (more than 128 input VCs): the plain
            // round-robin scans.
            // RC: head flits at buffer fronts compute their output port
            // (empty VCs hold a non-head sentinel).
            for g in base..in_hi * vcs {
                if net.vc_route[g] == NONE_U16 && net.front_flit[g].is_head() {
                    net.vc_route[g] =
                        net.tables.route[r * routers + net.front_flit[g].dst as usize];
                }
            }
            // VA: hand free output VCs to requesting input VCs, round-robin.
            for o in out_lo..out_hi {
                let o_local = (o - out_lo) as u16;
                for ovc in 0..vcs {
                    let ov = o * vcs + ovc;
                    if net.ovc_owner[ov] != NONE_U32 {
                        continue;
                    }
                    let mut idx = net.out_va_rr[o] as usize;
                    let mut assigned = None;
                    for _ in 0..total_vcs {
                        let g = base + idx;
                        let requesting = net.vc_route[g] == o_local
                            && net.vc_out_vc[g] == NONE_U16
                            && net.front_flit[g].is_head()
                            && t + 1 >= net.front_eligible[g];
                        if requesting {
                            assigned = Some(g);
                            break;
                        }
                        idx += 1;
                        if idx == total_vcs {
                            idx = 0;
                        }
                    }
                    if let Some(g) = assigned {
                        net.ovc_owner[ov] = g as u32;
                        net.vc_out_vc[g] = ovc as u16;
                        net.vc_va_done[g] = t;
                        idx += 1;
                        net.out_va_rr[o] = if idx == total_vcs { 0 } else { idx } as u32;
                        if measure {
                            activity[r].vc_allocations += 1;
                        }
                    }
                }
            }
        }
    }

    fn switch_traversal(&mut self, t: u64) {
        let measure = self.in_measure_window();
        let window_start = self.config.warmup_cycles;
        let window_end = window_start + self.config.measure_cycles;
        let horizon = self.horizon;
        let trace_links = self.trace_on && measure;
        let Simulator {
            network: net,
            activity,
            packets,
            latencies,
            arrivals,
            credit_wheel,
            req,
            completed_measured,
            latency_sum,
            head_latency_sum,
            max_latency,
            ejected_in_window,
            link_flits,
            ..
        } = self;
        let vcs = net.tables.vcs;
        let routers = net.tables.routers;
        let credit_slot = ((t + 1) & 1) as usize;
        let horizon = horizon as usize;
        let slot0 = (t % horizon as u64) as usize;

        // As in `route_and_allocate`: `r` indexes many SoA arrays at once.
        #[allow(clippy::needless_range_loop)]
        for r in 0..routers {
            if net.active_inputs[r] == 0 {
                continue;
            }
            let in_lo = net.tables.in_port_off[r] as usize;
            let in_hi = net.tables.in_port_off[r + 1] as usize;
            let base = in_lo * vcs;
            let injection_local = in_hi - in_lo - 1;
            let out_lo = net.tables.out_port_off[r] as usize;
            let out_hi = net.tables.out_port_off[r + 1] as usize;
            let ejection = out_hi - 1;
            let total_vcs = (in_hi - in_lo) * vcs;
            let mut used_inputs: u64 = 0;
            let fast = total_vcs <= 128;

            if fast {
                // One pass builds, per local output port, the mask of input
                // VCs whose front flit could traverse this cycle (all SA
                // conditions except credits and the one-per-input rule,
                // which are resolved at pick time). The snapshot is exact:
                // nothing earlier in this stage mutates this router, and a
                // popped VC only ever requested the already-processed port.
                for m in req[..out_hi - out_lo].iter_mut() {
                    *m = 0;
                }
                for idx in 0..total_vcs {
                    let g = base + idx;
                    let route = net.vc_route[g];
                    if route == NONE_U16 || net.vc_out_vc[g] == NONE_U16 {
                        continue;
                    }
                    if net.front_eligible[g] > t {
                        continue;
                    }
                    if net.front_flit[g].is_head() && t <= net.vc_va_done[g] {
                        continue;
                    }
                    req[route as usize] |= 1u128 << idx;
                }
            }
            // Input VCs of already-used input ports, as a VC-bit mask.
            let mut used_vcs: u128 = 0;
            let input_mask = if vcs >= 128 {
                u128::MAX
            } else {
                (1u128 << vcs) - 1
            };

            for o in out_lo..out_hi {
                let o_local = (o - out_lo) as u16;
                let winner = if fast {
                    let mut m = req[o - out_lo] & !used_vcs;
                    let start = net.out_sa_rr[o] as usize;
                    loop {
                        if m == 0 {
                            break None;
                        }
                        let at_or_after = m & (u128::MAX << start);
                        let pick = if at_or_after != 0 {
                            at_or_after.trailing_zeros()
                        } else {
                            m.trailing_zeros()
                        } as usize;
                        let g = base + pick;
                        let ovc = net.vc_out_vc[g] as usize;
                        if net.ovc_credits[o * vcs + ovc] == 0 {
                            m &= !(1u128 << pick);
                            continue;
                        }
                        break Some((g, pick / vcs, pick % vcs, ovc, pick));
                    }
                } else {
                    // Wide-router fallback: plain round-robin scan tracking
                    // (input port, vc) incrementally.
                    let mut idx = net.out_sa_rr[o] as usize;
                    let mut i = idx / vcs;
                    let mut v = idx - i * vcs;
                    let mut winner = None;
                    'scan: for _ in 0..total_vcs {
                        'check: {
                            if used_inputs & (1 << i) != 0 {
                                break 'check;
                            }
                            let g = base + idx;
                            if net.vc_route[g] != o_local {
                                break 'check;
                            }
                            let ovc = net.vc_out_vc[g];
                            if ovc == NONE_U16 {
                                break 'check;
                            }
                            if net.front_eligible[g] > t {
                                break 'check;
                            }
                            if net.front_flit[g].is_head() && t <= net.vc_va_done[g] {
                                break 'check;
                            }
                            if net.ovc_credits[o * vcs + ovc as usize] == 0 {
                                break 'check;
                            }
                            winner = Some((g, i, v, ovc as usize, idx));
                            break 'scan;
                        }
                        idx += 1;
                        v += 1;
                        if v == vcs {
                            v = 0;
                            i += 1;
                        }
                        if idx == total_vcs {
                            idx = 0;
                            i = 0;
                            v = 0;
                        }
                    }
                    winner
                };

                let Some((g, i, v, ovc, idx)) = winner else {
                    continue;
                };
                let next = idx + 1;
                net.out_sa_rr[o] = if next == total_vcs { 0 } else { next } as u32;
                used_inputs |= 1 << i;
                if fast {
                    used_vcs |= input_mask << (i * vcs);
                }
                let flit = net.pop_front(g);

                if measure {
                    activity[r].crossbar_traversals += 1;
                    if i != injection_local {
                        activity[r].buffer_reads += 1;
                    }
                }

                if o == ejection {
                    // Flit leaves the network; completion is at end of cycle.
                    let record = &mut packets[flit.packet as usize];
                    if flit.is_head() {
                        record.head_done = (t + 1) as u32;
                    }
                    if flit.tail {
                        record.tail_done = (t + 1) as u32;
                        if t >= window_start && t < window_end {
                            *ejected_in_window += 1;
                        }
                        if record.measured {
                            *completed_measured += 1;
                            let latency = (t + 1) as u32 - record.created;
                            *latency_sum += latency as u64;
                            *max_latency = (*max_latency).max(latency as u64);
                            latencies.push(latency);
                            *head_latency_sum += (record.head_done - record.created) as u64;
                        }
                    }
                } else {
                    net.ovc_credits[o * vcs + ovc] -= 1;
                    let span = net.tables.out_span[o] as usize;
                    // `1 + span < horizon`, so one conditional wrap suffices.
                    let mut slot = slot0 + 1 + span;
                    if slot >= horizon {
                        slot -= horizon;
                    }
                    arrivals[slot].push(ArrivalEvent {
                        port: net.tables.out_dst_port[o],
                        vc: ovc as u16,
                        flit,
                    });
                    if measure {
                        activity[r].link_flit_segments += span as u64;
                    }
                    if trace_links {
                        link_flits[o] += 1;
                    }
                }

                if flit.tail {
                    net.vc_route[g] = NONE_U16;
                    net.vc_out_vc[g] = NONE_U16;
                    net.vc_va_done[g] = u64::MAX;
                    net.ovc_owner[o * vcs + ovc] = NONE_U32;
                }
                if net.vc_len[g] == 0 && net.vc_route[g] == NONE_U16 {
                    net.active_inputs[r] -= 1;
                }

                // Return the freed buffer slot upstream (1-cycle credit wire).
                let base = net.tables.in_credit_base[in_lo + i];
                if base != NONE_U32 {
                    credit_wheel[credit_slot].push(base + v as u32);
                }
            }
        }
    }

    /// Telemetry only: publishes the per-link and per-router accumulators
    /// gathered during the measure window as `sim.link` / `sim.router`
    /// events. Runs once, after the statistics are final; it reads
    /// `stats` and the telemetry vectors but mutates nothing the engine
    /// uses, so fingerprints cannot be affected.
    fn emit_trace(&self, stats: &SimStats) {
        use noc_trace::FieldValue;
        let net = &self.network;
        let measure = self.config.measure_cycles.max(1) as f64;
        for r in 0..net.routers_len() {
            let ejection = net.ejection_port(r);
            for o in net.output_ports(r) {
                if o == ejection || self.link_flits[o] == 0 {
                    continue;
                }
                let flits = self.link_flits[o];
                noc_trace::emit(
                    "series",
                    "sim.link",
                    vec![
                        ("src", FieldValue::U64(r as u64)),
                        ("dst", FieldValue::U64(net.out_to_router(o) as u64)),
                        ("span", FieldValue::U64(net.out_span(o) as u64)),
                        ("flits", FieldValue::U64(flits)),
                        ("util", FieldValue::F64(flits as f64 / measure)),
                    ],
                );
            }
            let counters = &stats.activity[r];
            let avg_occupancy = if self.occ_samples == 0 {
                0.0
            } else {
                self.occ_sum[r] as f64 / self.occ_samples as f64
            };
            noc_trace::emit(
                "series",
                "sim.router",
                vec![
                    ("router", FieldValue::U64(r as u64)),
                    (
                        "crossbar_util",
                        FieldValue::F64(counters.crossbar_traversals as f64 / measure),
                    ),
                    ("buffer_writes", FieldValue::U64(counters.buffer_writes)),
                    ("buffer_reads", FieldValue::U64(counters.buffer_reads)),
                    ("avg_occupancy", FieldValue::F64(avg_occupancy)),
                    ("occ_samples", FieldValue::U64(self.occ_samples)),
                ],
            );
        }
    }

    /// Cheap rolling FNV-1a digest of the complete dynamic engine state at
    /// the current cycle boundary: cycle, RNG, counters, every buffered
    /// flit with its VC bookkeeping, credits, arbitration pointers, and
    /// both event wheels. Two engines with equal hashes at every boundary
    /// are in bit-identical states; a snapshot/restore round trip preserves
    /// the hash exactly.
    pub fn state_hash(&self) -> u64 {
        let mut fp = Fnv1a::with_tag("sim-state");
        fp.write_u64(self.cycle);
        for s in self.rng.state() {
            fp.write_u64(s);
        }
        fp.write_u64(self.packets.len() as u64);
        fp.write_u64(self.measured_total);
        fp.write_u64(self.completed_measured);
        fp.write_u64(self.latency_sum);
        fp.write_u64(self.head_latency_sum);
        fp.write_u64(self.max_latency);
        fp.write_u64(self.flit_sum);
        fp.write_u64(self.ejected_in_window);
        let net = &self.network;
        for g in 0..net.front_flit.len() {
            fp.write_u32(net.vc_len[g]);
            if net.vc_len[g] > 0 {
                hash_flit(&mut fp, net.front_flit[g]);
                fp.write_u64(net.front_eligible[g]);
                for b in net.vc_buf[g].iter() {
                    hash_flit(&mut fp, b.flit);
                    fp.write_u64(b.eligible);
                }
            }
            fp.write_u32(net.vc_route[g] as u32 | (net.vc_out_vc[g] as u32) << 16);
            fp.write_u64(net.vc_va_done[g]);
        }
        for &v in &net.ovc_owner {
            fp.write_u32(v);
        }
        for &v in &net.ovc_credits {
            fp.write_u32(v);
        }
        for &v in &net.out_va_rr {
            fp.write_u32(v);
        }
        for &v in &net.out_sa_rr {
            fp.write_u32(v);
        }
        for &v in &net.active_inputs {
            fp.write_u32(v);
        }
        for bucket in &self.arrivals {
            fp.write_u64(bucket.len() as u64);
            for ev in bucket {
                fp.write_u32(ev.port);
                fp.write_u32(ev.vc as u32);
                hash_flit(&mut fp, ev.flit);
            }
        }
        for slot in &self.credit_wheel {
            fp.write_u64(slot.len() as u64);
            for &ovc in slot {
                fp.write_u32(ovc);
            }
        }
        fp.finish()
    }

    /// Serializes the complete dynamic engine state at the current cycle
    /// boundary into a versioned, digest-protected snapshot (kind
    /// [`SIM_KIND`]). Restoring with the same topology, source, and config
    /// and running to completion is bit-identical to never having stopped.
    /// Call only between cycles — i.e. after construction, [`Simulator::step`],
    /// or [`Simulator::run_until`] — never from inside a stage.
    pub fn snapshot(&self) -> Vec<u8> {
        let net = &self.network;
        let total_in_vcs = net.front_flit.len();
        let mut w = Writer::new(SIM_KIND);
        w.write_u64(self.config.fingerprint());
        match &self.source {
            Source::Workload(wl) => {
                w.write_u8(0);
                w.write_u64(workload_fingerprint(wl));
                w.write_u64(0);
            }
            Source::Trace { trace, next } => {
                w.write_u8(1);
                w.write_u64(trace_fingerprint(trace));
                w.write_u64(*next as u64);
            }
        }
        w.write_u64(net.tables.routers as u64);
        w.write_u64(net.tables.vcs as u64);
        w.write_u64(total_in_vcs as u64);
        w.write_u64(net.ovc_owner.len() as u64);
        w.write_u64(self.horizon);
        w.write_u8(match self.done {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.write_u64(self.cycle);
        w.write_u64s(&self.rng.state());
        w.write_u64(self.measured_total);
        w.write_u64(self.completed_measured);
        w.write_u64(self.latency_sum);
        w.write_u64(self.head_latency_sum);
        w.write_u64(self.max_latency);
        w.write_u64(self.flit_sum);
        w.write_u64(self.ejected_in_window);
        w.write_len(self.packets.len());
        for p in &self.packets {
            w.write_u16(p.src);
            w.write_u16(p.dst);
            w.write_u32(p.flits);
            w.write_u32(p.created);
            w.write_u32(p.head_done);
            w.write_u32(p.tail_done);
            w.write_bool(p.measured);
        }
        w.write_u32s(&self.latencies);
        w.write_len(self.activity.len());
        for a in &self.activity {
            w.write_u64(a.buffer_writes);
            w.write_u64(a.buffer_reads);
            w.write_u64(a.crossbar_traversals);
            w.write_u64(a.link_flit_segments);
            w.write_u64(a.vc_allocations);
        }
        for bucket in &self.arrivals {
            w.write_len(bucket.len());
            for ev in bucket {
                w.write_u32(ev.port);
                w.write_u16(ev.vc);
                write_flit(&mut w, ev.flit);
            }
        }
        for slot in &self.credit_wheel {
            w.write_u32s(slot);
        }
        w.write_u64(self.occ_samples);
        w.write_u64s(&self.link_flits);
        w.write_u64s(&self.occ_sum);
        for g in 0..total_in_vcs {
            w.write_u32(net.vc_len[g]);
            if net.vc_len[g] > 0 {
                write_flit(&mut w, net.front_flit[g]);
                w.write_u64(net.front_eligible[g]);
                w.write_len(net.vc_buf[g].len());
                for b in net.vc_buf[g].iter() {
                    write_flit(&mut w, b.flit);
                    w.write_u64(b.eligible);
                }
            }
            w.write_u16(net.vc_route[g]);
            w.write_u16(net.vc_out_vc[g]);
            w.write_u64(net.vc_va_done[g]);
        }
        w.write_u32s(&net.ovc_owner);
        w.write_u32s(&net.ovc_credits);
        w.write_u32s(&net.out_va_rr);
        w.write_u32s(&net.out_sa_rr);
        w.write_u32s(&net.active_inputs);
        w.finish()
    }

    /// Restores a snapshot into a freshly built simulator, validating the
    /// wire format, the config/source fingerprints, and every dimension
    /// against the rebuilt network.
    fn apply_snapshot(mut self, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes, SIM_KIND)?;
        if r.read_u64()? != self.config.fingerprint() {
            return Err(SnapshotError::Mismatch {
                field: "sim config",
            });
        }
        let source_tag = r.read_u8()?;
        let source_fp = r.read_u64()?;
        let cursor = r.read_u64()? as usize;
        match &mut self.source {
            Source::Workload(wl) => {
                if source_tag != 0 {
                    return Err(SnapshotError::Mismatch {
                        field: "source kind",
                    });
                }
                if source_fp != workload_fingerprint(wl) {
                    return Err(SnapshotError::Mismatch { field: "workload" });
                }
            }
            Source::Trace { trace, next } => {
                if source_tag != 1 {
                    return Err(SnapshotError::Mismatch {
                        field: "source kind",
                    });
                }
                if source_fp != trace_fingerprint(trace) {
                    return Err(SnapshotError::Mismatch { field: "trace" });
                }
                if cursor > trace.events().len() {
                    return Err(SnapshotError::Corrupt {
                        field: "trace cursor",
                    });
                }
                *next = cursor;
            }
        }
        let routers = self.network.tables.routers;
        let vcs = self.network.tables.vcs;
        let total_in_vcs = self.network.front_flit.len();
        let total_ovcs = self.network.ovc_owner.len();
        let total_outputs = self.network.out_va_rr.len();
        for (field, expected) in [
            ("router count", routers),
            ("vc count", vcs),
            ("input vc count", total_in_vcs),
            ("output vc count", total_ovcs),
            ("event horizon", self.horizon as usize),
        ] {
            if r.read_u64()? != expected as u64 {
                return Err(SnapshotError::Mismatch { field });
            }
        }
        self.done = match r.read_u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => {
                return Err(SnapshotError::Corrupt {
                    field: "terminal verdict",
                })
            }
        };
        self.cycle = r.read_u64()?;
        let rng_state = r.read_u64s()?;
        let rng_state: [u64; 4] = rng_state
            .try_into()
            .map_err(|_| SnapshotError::Corrupt { field: "rng state" })?;
        self.rng = SmallRng::from_state(rng_state);
        self.measured_total = r.read_u64()?;
        self.completed_measured = r.read_u64()?;
        self.latency_sum = r.read_u64()?;
        self.head_latency_sum = r.read_u64()?;
        self.max_latency = r.read_u64()?;
        self.flit_sum = r.read_u64()?;
        self.ejected_in_window = r.read_u64()?;
        let packet_count = r.read_len(21)?;
        self.packets = Vec::with_capacity(packet_count);
        for _ in 0..packet_count {
            self.packets.push(PacketRecord {
                src: r.read_u16()?,
                dst: r.read_u16()?,
                flits: r.read_u32()?,
                created: r.read_u32()?,
                head_done: r.read_u32()?,
                tail_done: r.read_u32()?,
                measured: r.read_bool()?,
            });
        }
        self.latencies = r.read_u32s()?;
        let activity_len = r.read_len(40)?;
        if activity_len != routers {
            return Err(SnapshotError::Mismatch {
                field: "activity counters",
            });
        }
        self.activity = Vec::with_capacity(routers);
        for _ in 0..routers {
            self.activity.push(ActivityCounters {
                buffer_writes: r.read_u64()?,
                buffer_reads: r.read_u64()?,
                crossbar_traversals: r.read_u64()?,
                link_flit_segments: r.read_u64()?,
                vc_allocations: r.read_u64()?,
            });
        }
        for bucket in self.arrivals.iter_mut() {
            bucket.clear();
            let events = r.read_len(15)?;
            bucket.reserve(events);
            for _ in 0..events {
                let port = r.read_u32()?;
                let vc = r.read_u16()?;
                let flit = read_flit(&mut r)?;
                if port as usize * vcs >= total_in_vcs || vc as usize >= vcs {
                    return Err(SnapshotError::Corrupt {
                        field: "arrival event port",
                    });
                }
                bucket.push(ArrivalEvent { port, vc, flit });
            }
        }
        for slot in self.credit_wheel.iter_mut() {
            *slot = r.read_u32s()?;
            if slot.iter().any(|&ovc| ovc as usize >= total_ovcs) {
                return Err(SnapshotError::Corrupt {
                    field: "credit wheel entry",
                });
            }
        }
        self.occ_samples = r.read_u64()?;
        let link_flits = r.read_u64s()?;
        let occ_sum = r.read_u64s()?;
        if !link_flits.is_empty() && link_flits.len() != total_outputs {
            return Err(SnapshotError::Mismatch {
                field: "link flits",
            });
        }
        if !occ_sum.is_empty() && occ_sum.len() != routers {
            return Err(SnapshotError::Mismatch {
                field: "occupancy sums",
            });
        }
        // Telemetry follows the *current* sink state, not the snapshot's:
        // a restore under tracing starts zeroed series if the original run
        // had none, and a restore without tracing drops them.
        if self.trace_on {
            self.link_flits = if link_flits.is_empty() {
                vec![0; total_outputs]
            } else {
                link_flits
            };
            self.occ_sum = if occ_sum.is_empty() {
                vec![0; routers]
            } else {
                occ_sum
            };
        } else {
            self.link_flits = Vec::new();
            self.occ_sum = Vec::new();
        }
        let net = &mut self.network;
        for g in 0..total_in_vcs {
            let len = r.read_u32()?;
            net.vc_len[g] = len;
            net.vc_buf[g].clear();
            if len > 0 {
                net.front_flit[g] = read_flit(&mut r)?;
                net.front_eligible[g] = r.read_u64()?;
                let queued = r.read_len(17)?;
                if queued != len as usize - 1 {
                    return Err(SnapshotError::Corrupt {
                        field: "vc queue length",
                    });
                }
                net.vc_buf[g].reserve(queued);
                for _ in 0..queued {
                    let flit = read_flit(&mut r)?;
                    let eligible = r.read_u64()?;
                    net.vc_buf[g].push_back(crate::network::BufferedFlit { flit, eligible });
                }
            } else {
                net.front_flit[g] = Flit {
                    packet: 0,
                    seq: 1,
                    tail: false,
                    dst: 0,
                };
                net.front_eligible[g] = u64::MAX;
            }
            net.vc_route[g] = r.read_u16()?;
            net.vc_out_vc[g] = r.read_u16()?;
            net.vc_va_done[g] = r.read_u64()?;
        }
        for (field, dst, expected) in [
            ("output vc owners", &mut net.ovc_owner, total_ovcs),
            ("output vc credits", &mut net.ovc_credits, total_ovcs),
            ("va round-robin", &mut net.out_va_rr, total_outputs),
            ("sa round-robin", &mut net.out_sa_rr, total_outputs),
            ("active input counts", &mut net.active_inputs, routers),
        ] {
            let vs = r.read_u32s()?;
            if vs.len() != expected {
                return Err(SnapshotError::Mismatch { field });
            }
            *dst = vs;
        }
        r.finish()?;
        self.resumed = true;
        Ok(self)
    }

    /// Rebuilds a simulator from a [`Simulator::snapshot`], re-solving the
    /// routing for `topology`. The topology, workload, and config must be
    /// the ones the snapshot was taken under (validated by fingerprint and
    /// dimension checks). Running the restored simulator to completion is
    /// bit-identical to the uninterrupted run.
    pub fn restore(
        topology: &MeshTopology,
        workload: Workload,
        config: SimConfig,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        let dor = DorRouter::new(topology, config.weights);
        Self::with_router(topology, &dor, workload, config).apply_snapshot(bytes)
    }

    /// Like [`Simulator::restore`], but over pre-built shared network
    /// tables (the [`Simulator::with_tables`] counterpart).
    pub fn restore_with_tables(
        tables: Arc<NetTables>,
        workload: Workload,
        config: SimConfig,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        Self::with_tables(tables, workload, config).apply_snapshot(bytes)
    }

    /// Like [`Simulator::restore`], but for a trace-replay simulator (the
    /// [`Simulator::from_trace`] counterpart). The replay cursor is part of
    /// the snapshot.
    pub fn restore_trace(
        topology: &MeshTopology,
        trace: Trace,
        config: SimConfig,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        Self::from_trace(topology, trace, config).apply_snapshot(bytes)
    }

    fn compute_stats(&mut self, drained: bool) -> SimStats {
        let completed = self.completed_measured;
        let denom = completed.max(1) as f64;
        self.latencies.sort_unstable();
        let pct = |q: f64| -> f64 {
            if self.latencies.is_empty() {
                0.0
            } else {
                let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
                self.latencies[idx] as f64
            }
        };
        let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
        SimStats {
            cycles: self.cycle,
            measure_cycles: self.config.measure_cycles,
            nodes: self.network.routers_len(),
            measured_packets: self.measured_total,
            completed_packets: completed,
            avg_packet_latency: self.latency_sum as f64 / denom,
            avg_head_latency: self.head_latency_sum as f64 / denom,
            max_packet_latency: self.max_latency,
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            accepted_throughput: self.ejected_in_window as f64
                / (self.config.measure_cycles.max(1) as f64 * self.network.routers_len() as f64),
            offered_rate: match &self.source {
                Source::Workload(w) => w.injection_rate(),
                Source::Trace { trace, .. } => trace.mean_rate(),
            },
            avg_flits_per_packet: self.flit_sum as f64 / self.measured_total.max(1) as f64,
            activity: std::mem::take(&mut self.activity),
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyModel, PacketMix};
    use noc_routing::HopWeights;
    use noc_topology::RowPlacement;
    use noc_traffic::{SyntheticPattern, TrafficMatrix};

    fn workload(n: usize, rate: f64) -> Workload {
        Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            rate,
            PacketMix::paper(),
        )
    }

    #[test]
    fn zero_rate_run_is_empty() {
        let topo = MeshTopology::mesh(4);
        let sim = Simulator::new(&topo, workload(4, 0.0), SimConfig::latency_run(256, 1));
        let stats = sim.run();
        assert_eq!(stats.measured_packets, 0);
        assert_eq!(stats.completed_packets, 0);
        assert!(stats.drained);
        assert_eq!(stats.total_activity().crossbar_traversals, 0);
    }

    #[test]
    fn low_load_latency_matches_analytic_zero_load() {
        // At 0.1% injection the mesh is effectively contention-free: the
        // measured mean packet latency must match the analytic
        // L_D,avg + L_S,avg − 1 within a small contention epsilon.
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::latency_run(256, 3);
        config.warmup_cycles = 2_000;
        config.measure_cycles = 30_000;
        let stats = Simulator::new(&topo, workload(4, 0.001), config).run();
        assert!(stats.drained);
        assert!(stats.measured_packets > 100, "too few samples");

        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let model = LatencyModel::paper();
        // UR excludes self-pairs; recompute the analytic mean over src != dst.
        let mut head = 0.0;
        let mut pairs = 0;
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    head += model.head_pair(&dor, s, d) as f64;
                    pairs += 1;
                }
            }
        }
        let analytic = head / pairs as f64 + PacketMix::paper().serialization_latency(256) - 1.0;
        let diff = (stats.avg_packet_latency - analytic).abs();
        assert!(
            diff < 0.5,
            "sim {} vs analytic {analytic}",
            stats.avg_packet_latency
        );
    }

    #[test]
    fn single_pair_latency_is_exact() {
        // A deterministic single flow at negligible rate: latency must equal
        // the closed form exactly (no contention at all).
        let n = 4;
        let mut rates = vec![0.0; 256];
        rates[3] = 1.0; // router 0 -> router 3 (three X hops)
        let matrix = TrafficMatrix::from_rates(n, rates);
        let w = Workload::new(matrix, 0.002, PacketMix::uniform(256));
        let topo = MeshTopology::mesh(n);
        let stats = Simulator::new(&topo, w, SimConfig::latency_run(256, 9)).run();
        assert!(stats.measured_packets > 10);
        // Head: 3 hops · 4 + T_r = 15; single-flit packet => tail == head.
        assert!(
            (stats.avg_packet_latency - 15.0).abs() < 1e-9,
            "got {}",
            stats.avg_packet_latency
        );
        assert_eq!(stats.max_packet_latency, 15);
    }

    #[test]
    fn express_link_lowers_simulated_latency() {
        let n = 8;
        let mesh = MeshTopology::mesh(n);
        let row = RowPlacement::with_links(8, [(0, 3), (3, 7)]).unwrap();
        let express = MeshTopology::uniform(n, &row);
        let config = SimConfig::latency_run(256, 11);
        let mesh_stats = Simulator::new(&mesh, workload(n, 0.005), config).run();
        let express_stats = Simulator::new(&express, workload(n, 0.005), config).run();
        assert!(mesh_stats.drained && express_stats.drained);
        assert!(
            express_stats.avg_packet_latency < mesh_stats.avg_packet_latency,
            "express {} !< mesh {}",
            express_stats.avg_packet_latency,
            mesh_stats.avg_packet_latency
        );
    }

    #[test]
    fn multi_flit_packets_add_serialization() {
        // Same flow, 512-bit packets at 128-bit flits: 4 flits; packet
        // latency = head + 3.
        let n = 4;
        let mut rates = vec![0.0; 256];
        rates[3] = 1.0;
        let matrix = TrafficMatrix::from_rates(n, rates);
        let w = Workload::new(matrix, 0.002, PacketMix::uniform(512));
        let topo = MeshTopology::mesh(n);
        let stats = Simulator::new(&topo, w, SimConfig::latency_run(128, 13)).run();
        assert!(
            (stats.avg_packet_latency - 18.0).abs() < 1e-9,
            "got {}",
            stats.avg_packet_latency
        );
        assert!((stats.avg_flits_per_packet - 4.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_all_measured_packets_drain() {
        let topo = MeshTopology::mesh(4);
        let stats = Simulator::new(&topo, workload(4, 0.05), SimConfig::latency_run(256, 17)).run();
        assert!(stats.drained);
        assert_eq!(stats.completed_packets, stats.measured_packets);
        assert!(stats.measured_packets > 1000);
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let topo = MeshTopology::mesh(4);
        let a = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 5)).run();
        let b = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 5)).run();
        assert_eq!(a.avg_packet_latency, b.avg_packet_latency);
        assert_eq!(a.measured_packets, b.measured_packets);
        assert_eq!(a.total_activity(), b.total_activity());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // run_with_scratch must be statistically invisible: same stats as
        // run(), across repeated reuse of one scratch.
        let topo = MeshTopology::mesh(4);
        let mut scratch = SimScratch::new();
        for seed in [5, 7, 11] {
            let config = SimConfig::latency_run(256, seed);
            let fresh = Simulator::new(&topo, workload(4, 0.03), config).run();
            let reused =
                Simulator::new(&topo, workload(4, 0.03), config).run_with_scratch(&mut scratch);
            assert_eq!(fresh.fingerprint(), reused.fingerprint());
        }
    }

    #[test]
    fn run_until_and_finish_match_one_shot_run() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::latency_run(256, 7);
        let reference = Simulator::new(&topo, workload(4, 0.03), config).run();

        let mut sim = Simulator::new(&topo, workload(4, 0.03), config);
        // Step in uneven chunks, overshooting the schedule's end.
        let mut target = 97;
        while sim.run_until(target).is_none() {
            target += 1231;
        }
        let stats = sim.finish();
        assert_eq!(stats.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::latency_run(256, 31);
        let reference = Simulator::new(&topo, workload(4, 0.04), config).run();

        for cut in [1, 500, 2_000] {
            let mut sim = Simulator::new(&topo, workload(4, 0.04), config);
            sim.run_until(cut);
            let hash_before = sim.state_hash();
            let bytes = sim.snapshot();
            let restored =
                Simulator::restore(&topo, workload(4, 0.04), config, &bytes).expect("restore");
            assert_eq!(restored.state_hash(), hash_before, "hash at cut {cut}");
            assert_eq!(restored.cycle(), cut);
            let stats = restored.finish();
            assert_eq!(
                stats.fingerprint(),
                reference.fingerprint(),
                "resume from cut {cut} diverged"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_bytes() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::latency_run(256, 5);
        let mut sim = Simulator::new(&topo, workload(4, 0.05), config);
        sim.run_until(800);
        let bytes = sim.snapshot();
        let restored = Simulator::restore(&topo, workload(4, 0.05), config, &bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn restore_rejects_mismatched_context() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::latency_run(256, 5);
        let mut sim = Simulator::new(&topo, workload(4, 0.05), config);
        sim.run_until(100);
        let bytes = sim.snapshot();

        // Wrong config (different seed).
        let other = SimConfig::latency_run(256, 6);
        assert!(matches!(
            Simulator::restore(&topo, workload(4, 0.05), other, &bytes),
            Err(SnapshotError::Mismatch {
                field: "sim config"
            })
        ));
        // Wrong workload (different rate).
        assert!(matches!(
            Simulator::restore(&topo, workload(4, 0.06), config, &bytes),
            Err(SnapshotError::Mismatch { field: "workload" })
        ));
        // Wrong source kind.
        let trace = Trace::new(4, Vec::new());
        assert!(matches!(
            Simulator::restore_trace(&topo, trace, config, &bytes),
            Err(SnapshotError::Mismatch {
                field: "source kind"
            })
        ));
    }

    #[test]
    fn trace_snapshot_resumes_replay_cursor() {
        use noc_traffic::TraceEvent;
        let events: Vec<TraceEvent> = (0..40)
            .map(|i| TraceEvent {
                cycle: 5 + 13 * i,
                src: (i % 16) as usize,
                dst: ((i * 7 + 3) % 16) as usize,
                bits: 256,
            })
            .collect();
        let trace = Trace::new(4, events);
        let mut config = SimConfig::latency_run(256, 3);
        config.warmup_cycles = 0;
        config.measure_cycles = 2_000;
        let topo = MeshTopology::mesh(4);
        let reference = Simulator::from_trace(&topo, trace.clone(), config).run();

        let mut sim = Simulator::from_trace(&topo, trace.clone(), config);
        sim.run_until(260);
        let bytes = sim.snapshot();
        let restored = Simulator::restore_trace(&topo, trace, config, &bytes).unwrap();
        let stats = restored.finish();
        assert_eq!(stats.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn state_hash_evolves_and_is_deterministic() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::latency_run(256, 11);
        let mut a = Simulator::new(&topo, workload(4, 0.05), config);
        let mut b = Simulator::new(&topo, workload(4, 0.05), config);
        assert_eq!(a.state_hash(), b.state_hash());
        let h0 = a.state_hash();
        a.run_until(300);
        b.run_until(300);
        assert_ne!(a.state_hash(), h0, "hash must track progress");
        assert_eq!(a.state_hash(), b.state_hash(), "same seed, same state");
    }

    #[test]
    fn activity_counters_are_plausible() {
        let topo = MeshTopology::mesh(4);
        let stats = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 23)).run();
        let total = stats.total_activity();
        // Every link arrival is eventually read out.
        assert!(total.buffer_writes > 0);
        // Crossbar counts include injection and ejection traversals, so they
        // exceed buffer reads.
        assert!(total.crossbar_traversals > total.buffer_reads);
        // Mesh links are unit-length: segments == hops taken over links.
        assert!(total.link_flit_segments > 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use noc_model::PacketMix;
    use noc_traffic::{SyntheticPattern, TraceEvent, TrafficMatrix};

    #[test]
    fn trace_replay_is_cycle_exact() {
        // A single 2-hop packet injected at cycle 100: latency must be the
        // closed-form 2·4 + 3 = 11 cycles.
        let trace = Trace::new(
            4,
            vec![TraceEvent {
                cycle: 100,
                src: 0,
                dst: 2,
                bits: 128,
            }],
        );
        let mut config = SimConfig::latency_run(256, 1);
        config.warmup_cycles = 0;
        config.measure_cycles = 2_000;
        let stats = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert_eq!(stats.measured_packets, 1);
        assert_eq!(stats.completed_packets, 1);
        assert_eq!(stats.max_packet_latency, 11);
    }

    #[test]
    fn record_then_replay_matches_live_statistics() {
        // Record a workload into a trace, replay it: the replayed run sees
        // the same packet population, so latency statistics agree closely.
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4),
            0.01,
            PacketMix::paper(),
        );
        let mut config = SimConfig::latency_run(256, 9);
        config.warmup_cycles = 500;
        config.measure_cycles = 8_000;
        let live = Simulator::new(&MeshTopology::mesh(4), workload.clone(), config).run();

        let trace = Trace::record(&workload, 10_000, config.seed);
        let replay = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert!(replay.drained);
        assert!(
            (live.avg_packet_latency - replay.avg_packet_latency).abs() < 1.0,
            "live {} vs replay {}",
            live.avg_packet_latency,
            replay.avg_packet_latency
        );
    }

    #[test]
    fn bursty_trace_queues_and_drains() {
        // 20 packets injected the same cycle at one source: they serialise
        // through the NI but all drain.
        let events = (0..20)
            .map(|i| TraceEvent {
                cycle: 10,
                src: 0,
                dst: 12 + (i % 4) as usize,
                bits: 256,
            })
            .collect();
        let trace = Trace::new(4, events);
        let mut config = SimConfig::latency_run(256, 2);
        config.warmup_cycles = 0;
        config.measure_cycles = 1_000;
        let stats = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert!(stats.drained);
        assert_eq!(stats.completed_packets, 20);
        // Later packets queue behind earlier ones.
        assert!(stats.max_packet_latency > stats.p50_latency as u64);
    }
}
