//! The cycle-driven simulation engine.
//!
//! Each cycle executes, in order: credit returns, link arrivals (BW),
//! injection, RC + VA, and SA/ST. The stage gating reproduces the 3-stage
//! pipeline timing: a flit buffer-written at cycle `t` may be VC-allocated
//! at `t+1` and switch-traverse at `t+2`; a flit issued at `u` lands in the
//! downstream buffer at `u + 1 + span`, making an uncontended hop cost
//! exactly `T_r + span·T_l = 3 + span` cycles buffer-to-buffer.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketRecord};
use crate::network::{BufferedFlit, Network};
use crate::stats::{ActivityCounters, SimStats};
use noc_rng::rngs::SmallRng;
use noc_rng::SeedableRng;
use noc_routing::DorRouter;
use noc_topology::MeshTopology;
use noc_traffic::{Trace, Workload};
use std::collections::VecDeque;

/// Where injected packets come from: a stochastic workload or a recorded
/// trace replayed cycle-exactly.
enum Source {
    Workload(Workload),
    Trace { trace: Trace, next: usize },
}

/// A cycle-level simulation of one workload on one topology.
pub struct Simulator {
    network: Network,
    config: SimConfig,
    source: Source,
    rng: SmallRng,
    cycle: u64,
    packets: Vec<PacketRecord>,
    /// Pending credit returns: `(apply_cycle, router, output port, vc)`.
    credits: VecDeque<(u64, usize, usize, usize)>,
    activity: Vec<ActivityCounters>,
    measured_total: u64,
    completed_measured: u64,
    latency_sum: u64,
    head_latency_sum: u64,
    max_latency: u64,
    latencies: Vec<u32>,
    flit_sum: u64,
    ejected_in_window: u64,
}

impl Simulator {
    /// Builds a simulator for a topology and workload. The DOR routing solve
    /// is performed internally with the config's hop weights.
    pub fn new(topology: &MeshTopology, workload: Workload, config: SimConfig) -> Self {
        let dor = DorRouter::new(topology, config.weights);
        Self::with_router(topology, &dor, workload, config)
    }

    /// Builds a simulator reusing an existing routing solve.
    pub fn with_router(
        topology: &MeshTopology,
        dor: &DorRouter,
        workload: Workload,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            workload.matrix().side(),
            topology.side(),
            "workload and topology sizes must match"
        );
        Self::with_source(topology, dor, Source::Workload(workload), config)
    }

    /// Builds a simulator that replays a recorded [`Trace`] cycle-exactly
    /// (the packet stream is deterministic; the RNG only breaks arbitration
    /// ties, of which the engine has none — runs are fully reproducible).
    pub fn from_trace(topology: &MeshTopology, trace: Trace, config: SimConfig) -> Self {
        assert_eq!(
            trace.side(),
            topology.side(),
            "trace and topology sizes must match"
        );
        let dor = DorRouter::new(topology, config.weights);
        Self::with_source(topology, &dor, Source::Trace { trace, next: 0 }, config)
    }

    fn with_source(
        topology: &MeshTopology,
        dor: &DorRouter,
        source: Source,
        config: SimConfig,
    ) -> Self {
        let network = Network::build(topology, dor, &config);
        let routers = network.routers_len();
        Simulator {
            network,
            config,
            source,
            rng: SmallRng::seed_from_u64(config.seed),
            cycle: 0,
            packets: Vec::new(),
            credits: VecDeque::new(),
            activity: vec![ActivityCounters::default(); routers],
            measured_total: 0,
            completed_measured: 0,
            latency_sum: 0,
            head_latency_sum: 0,
            max_latency: 0,
            latencies: Vec::new(),
            flit_sum: 0,
            ejected_in_window: 0,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn in_measure_window(&self) -> bool {
        self.cycle >= self.config.warmup_cycles
            && self.cycle < self.config.warmup_cycles + self.config.measure_cycles
    }

    /// Runs the full warmup + measurement + drain schedule and returns the
    /// collected statistics.
    pub fn run(mut self) -> SimStats {
        let window_end = self.config.warmup_cycles + self.config.measure_cycles;
        let hard_end = window_end + self.config.drain_cycles_max;
        loop {
            self.step();
            if self.cycle < window_end {
                continue;
            }
            let drained = self.completed_measured == self.measured_total;
            if drained || self.cycle >= hard_end {
                return self.finish(drained);
            }
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let t = self.cycle;
        self.apply_credits(t);
        self.process_arrivals(t);
        self.inject(t);
        self.route_and_allocate(t);
        self.switch_traversal(t);
        self.cycle = t + 1;
    }

    fn apply_credits(&mut self, t: u64) {
        while let Some(&(when, router, port, vc)) = self.credits.front() {
            if when > t {
                break;
            }
            self.credits.pop_front();
            self.network.routers[router].outputs[port].vcs[vc].credits += 1;
        }
    }

    fn process_arrivals(&mut self, t: u64) {
        let measure = self.in_measure_window();
        let Network {
            channels, routers, ..
        } = &mut self.network;
        for channel in channels.iter_mut() {
            while let Some(&(arrival, flit, vc)) = channel.in_flight.front() {
                if arrival > t {
                    break;
                }
                channel.in_flight.pop_front();
                routers[channel.dst_router].inputs[channel.dst_port].vcs[vc]
                    .buffer
                    .push_back(BufferedFlit {
                        flit,
                        eligible: t + 2,
                    });
                if measure {
                    self.activity[channel.dst_router].buffer_writes += 1;
                }
            }
        }
    }

    fn inject(&mut self, t: u64) {
        let nodes = self.network.routers_len();
        // Gather this cycle's injections from the source.
        let mut pending: Vec<(usize, u32, usize)> = Vec::new(); // (src, bits, dst)
        match &mut self.source {
            Source::Workload(workload) => {
                for node in 0..nodes {
                    if let Some(spec) = workload.generate(node, &mut self.rng) {
                        pending.push((node, spec.bits, spec.dst));
                    }
                }
            }
            Source::Trace { trace, next } => {
                let events = trace.events();
                while *next < events.len() && events[*next].cycle <= t {
                    let e = events[*next];
                    *next += 1;
                    pending.push((e.src, e.bits, e.dst));
                }
            }
        }
        let measure = self.in_measure_window();
        for (node, bits, dst) in pending {
            let spec_dst = dst;
            let flits = bits.div_ceil(self.config.flit_bits).max(1);
            let packet_id = self.packets.len() as u32;
            self.packets.push(PacketRecord {
                src: node,
                dst: spec_dst,
                flits,
                created: t,
                head_done: None,
                tail_done: None,
                measured: measure,
            });
            if measure {
                self.measured_total += 1;
                self.flit_sum += flits as u64;
            }
            // Enqueue into the least-loaded injection VC (the NI's queues).
            let router = &mut self.network.routers[node];
            let inj = router.injection_port();
            let vc_idx = (0..router.inputs[inj].vcs.len())
                .min_by_key(|&v| router.inputs[inj].vcs[v].buffer.len())
                .expect("at least one VC");
            let queue = &mut router.inputs[inj].vcs[vc_idx].buffer;
            for seq in 0..flits {
                queue.push_back(BufferedFlit {
                    flit: Flit {
                        packet: packet_id,
                        seq: seq as u16,
                        tail: seq + 1 == flits,
                        dst: spec_dst as u16,
                    },
                    eligible: t + 2,
                });
            }
        }
    }

    fn route_and_allocate(&mut self, t: u64) {
        let measure = self.in_measure_window();
        for (r, router) in self.network.routers.iter_mut().enumerate() {
            let inputs = &mut router.inputs;
            let outputs = &mut router.outputs;
            let table = &router.out_port_for_dst;

            // RC: head flits at buffer fronts compute their output port.
            for port in inputs.iter_mut() {
                for vc in port.vcs.iter_mut() {
                    if vc.route_out.is_none() {
                        if let Some(front) = vc.buffer.front() {
                            if front.flit.is_head() {
                                vc.route_out = Some(table[front.flit.dst as usize] as usize);
                            }
                        }
                    }
                }
            }

            // VA: hand free output VCs to requesting input VCs, round-robin.
            let total_vcs: usize = inputs.iter().map(|p| p.vcs.len()).sum();
            for (o, out) in outputs.iter_mut().enumerate() {
                for ovc in 0..out.vcs.len() {
                    if out.vcs[ovc].owner.is_some() {
                        continue;
                    }
                    let start = out.va_rr;
                    let mut assigned = None;
                    for k in 0..total_vcs {
                        let idx = (start + k) % total_vcs;
                        let (i, v) = Self::decode_vc(inputs, idx);
                        let vc = &inputs[i].vcs[v];
                        let requesting = vc.route_out == Some(o)
                            && vc.out_vc.is_none()
                            && vc
                                .buffer
                                .front()
                                .is_some_and(|f| f.flit.is_head() && t + 1 >= f.eligible);
                        if requesting {
                            assigned = Some((i, v, idx));
                            break;
                        }
                    }
                    if let Some((i, v, idx)) = assigned {
                        out.vcs[ovc].owner = Some((i, v));
                        inputs[i].vcs[v].out_vc = Some(ovc);
                        inputs[i].vcs[v].va_done = Some(t);
                        out.va_rr = (idx + 1) % total_vcs;
                        if measure {
                            self.activity[r].vc_allocations += 1;
                        }
                    }
                }
            }
        }
    }

    fn switch_traversal(&mut self, t: u64) {
        let measure = self.in_measure_window();
        let window_start = self.config.warmup_cycles;
        let window_end = window_start + self.config.measure_cycles;
        // Channel pushes are buffered to keep the borrow checker happy and
        // applied after the router loop.
        let mut sends: Vec<(usize, u64, Flit, usize)> = Vec::new();

        for r in 0..self.network.routers.len() {
            let router = &mut self.network.routers[r];
            let injection = router.injection_port();
            let ejection = router.ejection_port();
            let inputs = &mut router.inputs;
            let outputs = &mut router.outputs;
            let total_vcs: usize = inputs.iter().map(|p| p.vcs.len()).sum();
            let mut used_inputs: u64 = 0;

            for (o, out) in outputs.iter_mut().enumerate() {
                let start = out.sa_rr;
                let mut winner = None;
                for k in 0..total_vcs {
                    let idx = (start + k) % total_vcs;
                    let (i, v) = Self::decode_vc(inputs, idx);
                    if used_inputs & (1 << i) != 0 {
                        continue;
                    }
                    let vc = &inputs[i].vcs[v];
                    if vc.route_out != Some(o) {
                        continue;
                    }
                    let Some(ovc) = vc.out_vc else { continue };
                    let Some(front) = vc.buffer.front() else {
                        continue;
                    };
                    if front.eligible > t {
                        continue;
                    }
                    if front.flit.is_head() && vc.va_done.is_none_or(|d| t <= d) {
                        continue;
                    }
                    if out.vcs[ovc].credits == 0 {
                        continue;
                    }
                    winner = Some((i, v, ovc, idx));
                    break;
                }

                let Some((i, v, ovc, idx)) = winner else {
                    continue;
                };
                out.sa_rr = (idx + 1) % total_vcs;
                used_inputs |= 1 << i;
                let buffered = inputs[i].vcs[v]
                    .buffer
                    .pop_front()
                    .expect("winner has a front flit");
                let flit = buffered.flit;

                if measure {
                    self.activity[r].crossbar_traversals += 1;
                    if i != injection {
                        self.activity[r].buffer_reads += 1;
                    }
                }

                if o == ejection {
                    // Flit leaves the network; completion is at end of cycle.
                    let record = &mut self.packets[flit.packet as usize];
                    if flit.is_head() {
                        record.head_done = Some(t + 1);
                    }
                    if flit.tail {
                        record.tail_done = Some(t + 1);
                        if t >= window_start && t < window_end {
                            self.ejected_in_window += 1;
                        }
                        if record.measured {
                            self.completed_measured += 1;
                            let latency = t + 1 - record.created;
                            self.latency_sum += latency;
                            self.max_latency = self.max_latency.max(latency);
                            self.latencies.push(latency.min(u32::MAX as u64) as u32);
                            self.head_latency_sum +=
                                record.head_done.expect("head before tail") - record.created;
                        }
                    }
                } else {
                    out.vcs[ovc].credits -= 1;
                    sends.push((out.channel, t + 1 + out.span as u64, flit, ovc));
                    if measure {
                        self.activity[r].link_flit_segments += out.span as u64;
                    }
                }

                if flit.tail {
                    let vc_state = &mut inputs[i].vcs[v];
                    vc_state.route_out = None;
                    vc_state.out_vc = None;
                    vc_state.va_done = None;
                    out.vcs[ovc].owner = None;
                }

                // Return the freed buffer slot upstream (1-cycle credit wire).
                if let Some((up_router, up_port)) = inputs[i].upstream {
                    self.credits.push_back((t + 1, up_router, up_port, v));
                }
            }
        }

        for (channel, arrival, flit, ovc) in sends {
            self.network.channels[channel]
                .in_flight
                .push_back((arrival, flit, ovc));
        }
    }

    /// Maps a flat VC index to `(input port, vc)`; all ports share the same
    /// VC count so this is a simple div/mod.
    fn decode_vc(inputs: &[crate::network::InputPort], idx: usize) -> (usize, usize) {
        let vcs = inputs[0].vcs.len();
        (idx / vcs, idx % vcs)
    }

    fn finish(mut self, drained: bool) -> SimStats {
        let completed = self.completed_measured;
        let denom = completed.max(1) as f64;
        self.latencies.sort_unstable();
        let pct = |q: f64| -> f64 {
            if self.latencies.is_empty() {
                0.0
            } else {
                let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
                self.latencies[idx] as f64
            }
        };
        let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
        SimStats {
            cycles: self.cycle,
            measure_cycles: self.config.measure_cycles,
            nodes: self.network.routers_len(),
            measured_packets: self.measured_total,
            completed_packets: completed,
            avg_packet_latency: self.latency_sum as f64 / denom,
            avg_head_latency: self.head_latency_sum as f64 / denom,
            max_packet_latency: self.max_latency,
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            accepted_throughput: self.ejected_in_window as f64
                / (self.config.measure_cycles.max(1) as f64 * self.network.routers_len() as f64),
            offered_rate: match &self.source {
                Source::Workload(w) => w.injection_rate(),
                Source::Trace { trace, .. } => trace.mean_rate(),
            },
            avg_flits_per_packet: self.flit_sum as f64 / self.measured_total.max(1) as f64,
            activity: self.activity,
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyModel, PacketMix};
    use noc_routing::HopWeights;
    use noc_topology::RowPlacement;
    use noc_traffic::{SyntheticPattern, TrafficMatrix};

    fn workload(n: usize, rate: f64) -> Workload {
        Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            rate,
            PacketMix::paper(),
        )
    }

    #[test]
    fn zero_rate_run_is_empty() {
        let topo = MeshTopology::mesh(4);
        let sim = Simulator::new(&topo, workload(4, 0.0), SimConfig::latency_run(256, 1));
        let stats = sim.run();
        assert_eq!(stats.measured_packets, 0);
        assert_eq!(stats.completed_packets, 0);
        assert!(stats.drained);
        assert_eq!(stats.total_activity().crossbar_traversals, 0);
    }

    #[test]
    fn low_load_latency_matches_analytic_zero_load() {
        // At 0.1% injection the mesh is effectively contention-free: the
        // measured mean packet latency must match the analytic
        // L_D,avg + L_S,avg − 1 within a small contention epsilon.
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::latency_run(256, 3);
        config.warmup_cycles = 2_000;
        config.measure_cycles = 30_000;
        let stats = Simulator::new(&topo, workload(4, 0.001), config).run();
        assert!(stats.drained);
        assert!(stats.measured_packets > 100, "too few samples");

        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let model = LatencyModel::paper();
        // UR excludes self-pairs; recompute the analytic mean over src != dst.
        let mut head = 0.0;
        let mut pairs = 0;
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    head += model.head_pair(&dor, s, d) as f64;
                    pairs += 1;
                }
            }
        }
        let analytic = head / pairs as f64 + PacketMix::paper().serialization_latency(256) - 1.0;
        let diff = (stats.avg_packet_latency - analytic).abs();
        assert!(
            diff < 0.5,
            "sim {} vs analytic {analytic}",
            stats.avg_packet_latency
        );
    }

    #[test]
    fn single_pair_latency_is_exact() {
        // A deterministic single flow at negligible rate: latency must equal
        // the closed form exactly (no contention at all).
        let n = 4;
        let mut rates = vec![0.0; 256];
        rates[3] = 1.0; // router 0 -> router 3 (three X hops)
        let matrix = TrafficMatrix::from_rates(n, rates);
        let w = Workload::new(matrix, 0.002, PacketMix::uniform(256));
        let topo = MeshTopology::mesh(n);
        let stats = Simulator::new(&topo, w, SimConfig::latency_run(256, 9)).run();
        assert!(stats.measured_packets > 10);
        // Head: 3 hops · 4 + T_r = 15; single-flit packet => tail == head.
        assert!(
            (stats.avg_packet_latency - 15.0).abs() < 1e-9,
            "got {}",
            stats.avg_packet_latency
        );
        assert_eq!(stats.max_packet_latency, 15);
    }

    #[test]
    fn express_link_lowers_simulated_latency() {
        let n = 8;
        let mesh = MeshTopology::mesh(n);
        let row = RowPlacement::with_links(8, [(0, 3), (3, 7)]).unwrap();
        let express = MeshTopology::uniform(n, &row);
        let config = SimConfig::latency_run(256, 11);
        let mesh_stats = Simulator::new(&mesh, workload(n, 0.005), config).run();
        let express_stats = Simulator::new(&express, workload(n, 0.005), config).run();
        assert!(mesh_stats.drained && express_stats.drained);
        assert!(
            express_stats.avg_packet_latency < mesh_stats.avg_packet_latency,
            "express {} !< mesh {}",
            express_stats.avg_packet_latency,
            mesh_stats.avg_packet_latency
        );
    }

    #[test]
    fn multi_flit_packets_add_serialization() {
        // Same flow, 512-bit packets at 128-bit flits: 4 flits; packet
        // latency = head + 3.
        let n = 4;
        let mut rates = vec![0.0; 256];
        rates[3] = 1.0;
        let matrix = TrafficMatrix::from_rates(n, rates);
        let w = Workload::new(matrix, 0.002, PacketMix::uniform(512));
        let topo = MeshTopology::mesh(n);
        let stats = Simulator::new(&topo, w, SimConfig::latency_run(128, 13)).run();
        assert!(
            (stats.avg_packet_latency - 18.0).abs() < 1e-9,
            "got {}",
            stats.avg_packet_latency
        );
        assert!((stats.avg_flits_per_packet - 4.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_all_measured_packets_drain() {
        let topo = MeshTopology::mesh(4);
        let stats = Simulator::new(&topo, workload(4, 0.05), SimConfig::latency_run(256, 17)).run();
        assert!(stats.drained);
        assert_eq!(stats.completed_packets, stats.measured_packets);
        assert!(stats.measured_packets > 1000);
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let topo = MeshTopology::mesh(4);
        let a = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 5)).run();
        let b = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 5)).run();
        assert_eq!(a.avg_packet_latency, b.avg_packet_latency);
        assert_eq!(a.measured_packets, b.measured_packets);
        assert_eq!(a.total_activity(), b.total_activity());
    }

    #[test]
    fn activity_counters_are_plausible() {
        let topo = MeshTopology::mesh(4);
        let stats = Simulator::new(&topo, workload(4, 0.02), SimConfig::latency_run(256, 23)).run();
        let total = stats.total_activity();
        // Every link arrival is eventually read out.
        assert!(total.buffer_writes > 0);
        // Crossbar counts include injection and ejection traversals, so they
        // exceed buffer reads.
        assert!(total.crossbar_traversals > total.buffer_reads);
        // Mesh links are unit-length: segments == hops taken over links.
        assert!(total.link_flit_segments > 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use noc_model::PacketMix;
    use noc_traffic::{SyntheticPattern, TraceEvent, TrafficMatrix};

    #[test]
    fn trace_replay_is_cycle_exact() {
        // A single 2-hop packet injected at cycle 100: latency must be the
        // closed-form 2·4 + 3 = 11 cycles.
        let trace = Trace::new(
            4,
            vec![TraceEvent {
                cycle: 100,
                src: 0,
                dst: 2,
                bits: 128,
            }],
        );
        let mut config = SimConfig::latency_run(256, 1);
        config.warmup_cycles = 0;
        config.measure_cycles = 2_000;
        let stats = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert_eq!(stats.measured_packets, 1);
        assert_eq!(stats.completed_packets, 1);
        assert_eq!(stats.max_packet_latency, 11);
    }

    #[test]
    fn record_then_replay_matches_live_statistics() {
        // Record a workload into a trace, replay it: the replayed run sees
        // the same packet population, so latency statistics agree closely.
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4),
            0.01,
            PacketMix::paper(),
        );
        let mut config = SimConfig::latency_run(256, 9);
        config.warmup_cycles = 500;
        config.measure_cycles = 8_000;
        let live = Simulator::new(&MeshTopology::mesh(4), workload.clone(), config).run();

        let trace = Trace::record(&workload, 10_000, config.seed);
        let replay = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert!(replay.drained);
        assert!(
            (live.avg_packet_latency - replay.avg_packet_latency).abs() < 1.0,
            "live {} vs replay {}",
            live.avg_packet_latency,
            replay.avg_packet_latency
        );
    }

    #[test]
    fn bursty_trace_queues_and_drains() {
        // 20 packets injected the same cycle at one source: they serialise
        // through the NI but all drain.
        let events = (0..20)
            .map(|i| TraceEvent {
                cycle: 10,
                src: 0,
                dst: 12 + (i % 4) as usize,
                bits: 256,
            })
            .collect();
        let trace = Trace::new(4, events);
        let mut config = SimConfig::latency_run(256, 2);
        config.warmup_cycles = 0;
        config.measure_cycles = 1_000;
        let stats = Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run();
        assert!(stats.drained);
        assert_eq!(stats.completed_packets, 20);
        // Later packets queue behind earlier ones.
        assert!(stats.max_packet_latency > stats.p50_latency as u64);
    }
}
