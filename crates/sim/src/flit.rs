//! Flits and packets.

/// A flow-control digit. Flits are small and `Copy`; per-packet bookkeeping
/// lives in the simulator's packet table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Index into the packet table.
    pub packet: u32,
    /// Position within the packet (0 = head).
    pub seq: u16,
    /// Whether this is the last flit of its packet.
    pub tail: bool,
    /// Destination router (flat id), replicated for O(1) route computation.
    pub dst: u16,
}

impl Flit {
    /// Whether this is the head flit (carries routing information).
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// Sentinel for "not yet happened" in [`PacketRecord`] completion cycles.
pub const PENDING: u32 = u32::MAX;

/// Lifetime record of one packet.
///
/// The ledger is the simulator's largest allocation (one record per
/// injected packet), and the ejection path touches records at effectively
/// random offsets, so the record is packed to 24 bytes: cycle counts are
/// `u32` (a single run is bounded far below 2^32 cycles) with [`PENDING`]
/// standing in for "not yet", and router ids are `u16` (flat ids already
/// fit [`Flit::dst`]).
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Source router (flat id).
    pub src: u16,
    /// Destination router (flat id).
    pub dst: u16,
    /// Number of flits (`ceil(bits / flit_bits)`).
    pub flits: u32,
    /// Cycle the packet was created and enqueued at the source NI.
    pub created: u32,
    /// Completion cycle of the head flit's ejection (exclusive: the cycle
    /// *after* its ejection ST), or [`PENDING`].
    pub head_done: u32,
    /// Completion cycle of the tail flit's ejection, or [`PENDING`].
    pub tail_done: u32,
    /// Whether the packet was created inside the measurement window.
    pub measured: bool,
}

impl PacketRecord {
    /// Head latency in cycles, if the head flit has arrived.
    pub fn head_latency(&self) -> Option<u64> {
        (self.head_done != PENDING).then(|| (self.head_done - self.created) as u64)
    }

    /// Full packet latency in cycles (creation to tail delivery).
    pub fn packet_latency(&self) -> Option<u64> {
        (self.tail_done != PENDING).then(|| (self.tail_done - self.created) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_flit_detection() {
        let head = Flit {
            packet: 0,
            seq: 0,
            tail: false,
            dst: 5,
        };
        let tail = Flit {
            packet: 0,
            seq: 3,
            tail: true,
            dst: 5,
        };
        assert!(head.is_head());
        assert!(!tail.is_head());
        assert!(tail.tail);
    }

    #[test]
    fn latencies_need_completion() {
        let mut rec = PacketRecord {
            src: 0,
            dst: 9,
            flits: 2,
            created: 100,
            head_done: PENDING,
            tail_done: PENDING,
            measured: true,
        };
        assert_eq!(rec.head_latency(), None);
        rec.head_done = 110;
        rec.tail_done = 111;
        assert_eq!(rec.head_latency(), Some(10));
        assert_eq!(rec.packet_latency(), Some(11));
        assert_eq!(std::mem::size_of::<PacketRecord>(), 24);
    }
}
