//! Flits and packets.

/// A flow-control digit. Flits are small and `Copy`; per-packet bookkeeping
/// lives in the simulator's packet table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Index into the packet table.
    pub packet: u32,
    /// Position within the packet (0 = head).
    pub seq: u16,
    /// Whether this is the last flit of its packet.
    pub tail: bool,
    /// Destination router (flat id), replicated for O(1) route computation.
    pub dst: u16,
}

impl Flit {
    /// Whether this is the head flit (carries routing information).
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// Lifetime record of one packet.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Source router (flat id).
    pub src: usize,
    /// Destination router (flat id).
    pub dst: usize,
    /// Number of flits (`ceil(bits / flit_bits)`).
    pub flits: u32,
    /// Cycle the packet was created and enqueued at the source NI.
    pub created: u64,
    /// Completion cycle of the head flit's ejection (exclusive: the cycle
    /// *after* its ejection ST), if ejected.
    pub head_done: Option<u64>,
    /// Completion cycle of the tail flit's ejection, if ejected.
    pub tail_done: Option<u64>,
    /// Whether the packet was created inside the measurement window.
    pub measured: bool,
}

impl PacketRecord {
    /// Head latency in cycles, if the head flit has arrived.
    pub fn head_latency(&self) -> Option<u64> {
        self.head_done.map(|t| t - self.created)
    }

    /// Full packet latency in cycles (creation to tail delivery).
    pub fn packet_latency(&self) -> Option<u64> {
        self.tail_done.map(|t| t - self.created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_flit_detection() {
        let head = Flit {
            packet: 0,
            seq: 0,
            tail: false,
            dst: 5,
        };
        let tail = Flit {
            packet: 0,
            seq: 3,
            tail: true,
            dst: 5,
        };
        assert!(head.is_head());
        assert!(!tail.is_head());
        assert!(tail.tail);
    }

    #[test]
    fn latencies_need_completion() {
        let mut rec = PacketRecord {
            src: 0,
            dst: 9,
            flits: 2,
            created: 100,
            head_done: None,
            tail_done: None,
            measured: true,
        };
        assert_eq!(rec.head_latency(), None);
        rec.head_done = Some(110);
        rec.tail_done = Some(111);
        assert_eq!(rec.head_latency(), Some(10));
        assert_eq!(rec.packet_latency(), Some(11));
    }
}
