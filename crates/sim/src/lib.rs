//! Cycle-level wormhole NoC simulator — the substrate standing in for
//! gem5 + GARNET in the paper's evaluation (§5.1; see DESIGN.md §2 for the
//! substitution argument).
//!
//! Microarchitecture (one clock domain, one cycle granularity):
//!
//! * **Routers** follow the canonical 3-stage credit-based wormhole pipeline
//!   the paper assumes: BW+RC in the arrival cycle, VA the next cycle,
//!   SA+ST the cycle after — 3 cycles per router for an uncontended flit,
//!   matching `T_r = 3`.
//! * **Links** take `span` additional cycles (express links are repeatered
//!   into unit segments, §2.2), so an uncontended hop costs
//!   `T_r + span·T_l` — exactly the analytic hop cost of `noc-routing`.
//! * **Virtual channels** with per-VC FIFO buffers and credit-based flow
//!   control (credits return with one cycle of wire latency).
//! * **Routing** is table-based dimension-order: a per-network next-hop
//!   table compiled from `noc-routing`'s directional APSP solve (Fig. 3's
//!   router implementation).
//! * **Traffic** comes from `noc-traffic` workloads: Bernoulli injection,
//!   matrix-sampled destinations, multi-class packet sizes serialised into
//!   `ceil(bits / flit_bits)` flits.
//!
//! Measurement follows standard NoC methodology: warm up, tag packets
//! created during the measurement window, and drain until every tagged
//! packet leaves. At (near) zero load the measured packet latency equals the
//! analytic `L_D + L_S − 1` of `noc-model` exactly (the −1 is bookkeeping:
//! the analytic sum charges the head flit's delivery cycle twice — once in
//! `L_D`'s arrival and once in `L_S = ceil(S/b)`; integration tests pin this
//! identity).
//!
//! Activity counters (buffer writes/reads, crossbar traversals, link
//! flit-segments) feed the `noc-power` DSENT-substitute model.

pub mod batch;
pub mod config;
pub mod engine;
pub mod flit;
pub mod network;
pub mod stats;
pub mod throughput;

pub use batch::{BatchSimulator, BATCH_KIND, MAX_LANES};
pub use config::SimConfig;
pub use engine::{trace_fingerprint, workload_fingerprint, SimScratch, Simulator, SIM_KIND};
pub use network::NetTables;
pub use stats::{ActivityCounters, SimStats};
pub use throughput::{saturation_sweep, SweepRunner, SweepSample, ThroughputResult};
