//! Flattened (struct-of-arrays) network state: ports, virtual channels and
//! compiled routing tables live in contiguous flat arrays indexed by
//! precomputed offsets, so the per-cycle engine loops walk linear memory
//! instead of chasing nested `Vec`s.
//!
//! Layout. Ports are numbered globally: router `r`'s input ports occupy
//! `in_port_off[r]..in_port_off[r+1]` (link ports in topology order, the
//! injection port last), and its output ports occupy
//! `out_port_off[r]..out_port_off[r+1]` (ejection last). Every port has the
//! same number of VCs `V`, so input VC `(port p, vc v)` lives at flat index
//! `p·V + v` in the `vc_*` arrays and output VC state at `o·V + v` in the
//! `ovc_*` arrays. The port construction order is exactly the order the
//! previous nested representation used (links in `topology.links()` order,
//! the `a→b` direction before `b→a`), which keeps round-robin arbitration —
//! and therefore every simulation statistic — bit-identical.
//!
//! The static structure (port offsets, wiring, spans, compiled route table)
//! is split into [`NetTables`] and shared behind an `Arc`: a rate ladder,
//! a Monte-Carlo seed batch, or a lockstep [`crate::BatchSimulator`] run
//! builds the tables once per topology and every replica — across worker
//! threads and batch lanes alike — reads them without copying.

use crate::config::SimConfig;
use crate::flit::Flit;
use noc_routing::DorRouter;
use noc_topology::MeshTopology;
use std::collections::VecDeque;
use std::sync::Arc;

/// Sentinel for "no port/VC" in `u16` fields.
pub const NONE_U16: u16 = u16::MAX;
/// Sentinel for "no port/VC" in `u32` fields.
pub const NONE_U32: u32 = u32::MAX;

/// A flit sitting in a VC buffer with its earliest switch-traversal cycle
/// (`arrival + 2`: BW+RC, VA, then SA — the 3-stage pipeline).
#[derive(Debug, Clone, Copy)]
pub struct BufferedFlit {
    /// The flit itself.
    pub flit: Flit,
    /// Earliest cycle this flit may win switch allocation.
    pub eligible: u64,
}

/// The immutable, per-topology part of the network: port offsets, link
/// wiring, spans, and the compiled DOR route table. Built once per
/// topology and shared read-only (behind an `Arc`) by every simulation
/// replica — scalar sweep workers and lockstep batch lanes alike.
#[derive(Debug)]
pub struct NetTables {
    /// Mesh side length.
    pub side: usize,
    /// Number of routers.
    pub(crate) routers: usize,
    /// Virtual channels per port.
    pub(crate) vcs: usize,
    /// Input-port range per router (`routers + 1` entries; injection last).
    pub(crate) in_port_off: Vec<u32>,
    /// Output-port range per router (`routers + 1` entries; ejection last).
    pub(crate) out_port_off: Vec<u32>,
    /// Per input port: owning router.
    pub(crate) in_port_router: Vec<u32>,
    /// Per input port: flat output-VC base (`out_port · V`) credits return
    /// to upstream, or [`NONE_U32`] for injection ports.
    pub(crate) in_credit_base: Vec<u32>,
    /// Per output port: flat destination input port ([`NONE_U32`] for
    /// ejection).
    pub(crate) out_dst_port: Vec<u32>,
    /// Per output port: destination router ([`NONE_U32`] for ejection).
    pub(crate) out_dst_router: Vec<u32>,
    /// Per output port: link length in unit segments (0 for ejection).
    pub(crate) out_span: Vec<u32>,
    /// Compiled route table, `routers × routers`: local output port index
    /// at router `r` toward destination `d` at `r·routers + d` (self maps
    /// to the ejection port).
    pub(crate) route: Vec<u16>,
}

impl NetTables {
    /// Number of routers.
    pub fn routers_len(&self) -> usize {
        self.routers
    }

    /// Virtual channels per port.
    pub fn vcs_per_port(&self) -> usize {
        self.vcs
    }

    /// Longest link span of any output port (0 on an empty network).
    pub fn max_span(&self) -> usize {
        self.out_span.iter().copied().max().unwrap_or(0) as usize
    }

    /// Input ports of router `r` as a flat range (injection port last).
    pub fn input_ports(&self, r: usize) -> std::ops::Range<usize> {
        self.in_port_off[r] as usize..self.in_port_off[r + 1] as usize
    }

    /// Output ports of router `r` as a flat range (ejection port last).
    pub fn output_ports(&self, r: usize) -> std::ops::Range<usize> {
        self.out_port_off[r] as usize..self.out_port_off[r + 1] as usize
    }

    /// Flat index of router `r`'s injection input port.
    pub fn injection_port(&self, r: usize) -> usize {
        self.in_port_off[r + 1] as usize - 1
    }

    /// Flat index of router `r`'s ejection output port.
    pub fn ejection_port(&self, r: usize) -> usize {
        self.out_port_off[r + 1] as usize - 1
    }

    /// Destination router of a flat output port ([`NONE_U32`] for ejection).
    pub fn out_to_router(&self, port: usize) -> u32 {
        self.out_dst_router[port]
    }

    /// Link span of a flat output port.
    pub fn out_span(&self, port: usize) -> u32 {
        self.out_span[port]
    }

    /// Total input ports across all routers.
    pub fn total_inputs(&self) -> usize {
        self.in_port_off[self.routers] as usize
    }

    /// Total output ports across all routers.
    pub fn total_outputs(&self) -> usize {
        self.out_port_off[self.routers] as usize
    }

    /// Largest per-router output-port count.
    pub fn max_outputs(&self) -> usize {
        (0..self.routers)
            .map(|r| self.output_ports(r).len())
            .max()
            .unwrap_or(0)
    }

    /// Largest per-router input-VC count — the request-mask width the
    /// arbitration fast paths need (`<= 64` for the batch engine's `u64`
    /// request words; the scalar engine's `u128` masks go twice as far).
    pub fn max_total_vcs(&self) -> usize {
        (0..self.routers)
            .map(|r| self.input_ports(r).len() * self.vcs)
            .max()
            .unwrap_or(0)
    }

    /// Builds the static tables for a topology: instantiates two directed
    /// port pairs per physical link and compiles per-router output-port
    /// tables from the DOR solve.
    pub fn build(topology: &MeshTopology, dor: &DorRouter, vcs: usize) -> Self {
        let n = topology.side();
        let routers = topology.routers();

        // Per-router port lists in the legacy construction order: links in
        // `topology.links()` order, the a→b direction before b→a, then the
        // injection/ejection ports. `usize::MAX` marks not-yet-known flat
        // indices resolved after flattening.
        struct InPort {
            upstream: Option<(usize, usize)>, // (router, local output port)
        }
        struct OutPort {
            to_router: usize,
            to_local_in: usize, // local input port index at to_router
            span: usize,
        }
        let mut inputs: Vec<Vec<InPort>> = (0..routers).map(|_| Vec::new()).collect();
        let mut outputs: Vec<Vec<OutPort>> = (0..routers).map(|_| Vec::new()).collect();
        // neighbour flat id -> local output port index, per router.
        let mut out_index: Vec<std::collections::HashMap<usize, usize>> =
            vec![std::collections::HashMap::new(); routers];

        for link in topology.links() {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let dst_local = inputs[to].len();
                let src_local = outputs[from].len();
                inputs[to].push(InPort {
                    upstream: Some((from, src_local)),
                });
                outputs[from].push(OutPort {
                    to_router: to,
                    to_local_in: dst_local,
                    span: link.length,
                });
                out_index[from].insert(to, src_local);
            }
        }
        for r in 0..routers {
            inputs[r].push(InPort { upstream: None }); // injection
            outputs[r].push(OutPort {
                to_router: usize::MAX,
                to_local_in: usize::MAX,
                span: 0,
            }); // ejection
        }

        // Flatten: offsets first, then per-port arrays.
        let mut in_port_off = Vec::with_capacity(routers + 1);
        let mut out_port_off = Vec::with_capacity(routers + 1);
        in_port_off.push(0u32);
        out_port_off.push(0u32);
        for r in 0..routers {
            in_port_off.push(in_port_off[r] + inputs[r].len() as u32);
            out_port_off.push(out_port_off[r] + outputs[r].len() as u32);
        }
        let total_in: usize = in_port_off[routers] as usize;
        let total_out: usize = out_port_off[routers] as usize;

        let mut in_port_router = vec![0u32; total_in];
        let mut in_credit_base = vec![NONE_U32; total_in];
        let mut out_dst_port = vec![NONE_U32; total_out];
        let mut out_dst_router = vec![NONE_U32; total_out];
        let mut out_span = vec![0u32; total_out];
        for r in 0..routers {
            for (local, port) in inputs[r].iter().enumerate() {
                let flat = in_port_off[r] as usize + local;
                in_port_router[flat] = r as u32;
                if let Some((up_router, up_local)) = port.upstream {
                    let up_flat = out_port_off[up_router] as usize + up_local;
                    in_credit_base[flat] = (up_flat * vcs) as u32;
                }
            }
            for (local, port) in outputs[r].iter().enumerate() {
                let flat = out_port_off[r] as usize + local;
                out_span[flat] = port.span as u32;
                if port.to_router != usize::MAX {
                    out_dst_router[flat] = port.to_router as u32;
                    out_dst_port[flat] = in_port_off[port.to_router] + port.to_local_in as u32;
                }
            }
        }

        // Compile the route tables: next hop per destination via DOR.
        let mut route = vec![0u16; routers * routers];
        for r in 0..routers {
            let (rx, ry) = (r % n, r / n);
            let ejection_local = outputs[r].len() - 1;
            for d in 0..routers {
                route[r * routers + d] = if d == r {
                    ejection_local as u16
                } else {
                    let (dx, dy) = (d % n, d / n);
                    let next = if dx != rx {
                        let nx = dor
                            .row_apsp(ry)
                            .next_hop(rx, dx)
                            .expect("row next hop exists");
                        ry * n + nx
                    } else {
                        let ny = dor
                            .col_apsp(rx)
                            .next_hop(ry, dy)
                            .expect("col next hop exists");
                        ny * n + rx
                    };
                    out_index[r][&next] as u16
                };
            }
        }

        NetTables {
            side: n,
            routers,
            vcs,
            in_port_off,
            out_port_off,
            in_port_router,
            in_credit_base,
            out_dst_port,
            out_dst_router,
            out_span,
            route,
        }
    }
}

/// The complete network state: shared static tables plus the per-replica
/// dynamic arrays.
#[derive(Debug, Clone)]
pub struct Network {
    /// Static structure shared across replicas of the same topology.
    pub(crate) tables: Arc<NetTables>,
    // ---- dynamic state ----
    /// Per input VC: the buffered flits *behind* the front one (depth is
    /// enforced upstream via credits; injection VCs are unbounded NI source
    /// queues). The front flit itself is mirrored into the flat
    /// `front_flit`/`front_eligible` arrays so the per-cycle stages read
    /// contiguous memory instead of chasing per-deque heap pointers.
    pub(crate) vc_buf: Vec<VecDeque<BufferedFlit>>,
    /// Per input VC: the front (oldest) flit. When the VC is empty this is
    /// a sentinel with a non-zero `seq`, so `is_head()` is false without a
    /// separate length check.
    pub(crate) front_flit: Vec<Flit>,
    /// Per input VC: the front flit's earliest SA cycle; `u64::MAX` when
    /// the VC is empty, so every eligibility comparison fails naturally.
    pub(crate) front_eligible: Vec<u64>,
    /// Per input VC: buffered flit count (front + queued).
    pub(crate) vc_len: Vec<u32>,
    /// Per input VC: local output port of the owning packet ([`NONE_U16`]
    /// until RC).
    pub(crate) vc_route: Vec<u16>,
    /// Per input VC: allocated downstream VC ([`NONE_U16`] until VA).
    pub(crate) vc_out_vc: Vec<u16>,
    /// Per input VC: cycle VA succeeded (`u64::MAX` = not yet), gating SA
    /// to the following cycle.
    pub(crate) vc_va_done: Vec<u64>,
    /// Per output VC: global input-VC index of the packet owning the
    /// downstream VC ([`NONE_U32`] = free).
    pub(crate) ovc_owner: Vec<u32>,
    /// Per output VC: credits (free downstream buffer slots).
    pub(crate) ovc_credits: Vec<u32>,
    /// Per output port: round-robin pointer for VC allocation.
    pub(crate) out_va_rr: Vec<u32>,
    /// Per output port: round-robin pointer for switch allocation.
    pub(crate) out_sa_rr: Vec<u32>,
    /// Per router: input VCs that are non-empty or hold route state. A
    /// router at 0 is provably idle and RC/VA/SA skip it entirely — the
    /// skip cannot change arbitration because round-robin pointers only
    /// advance on assignments, which require an active input VC.
    pub(crate) active_inputs: Vec<u32>,
}

impl Network {
    /// Number of routers.
    pub fn routers_len(&self) -> usize {
        self.tables.routers
    }

    /// Virtual channels per port.
    pub fn vcs_per_port(&self) -> usize {
        self.tables.vcs
    }

    /// Longest link span of any output port (0 on an empty network).
    pub fn max_span(&self) -> usize {
        self.tables.max_span()
    }

    /// Input ports of router `r` as a flat range (injection port last).
    pub fn input_ports(&self, r: usize) -> std::ops::Range<usize> {
        self.tables.input_ports(r)
    }

    /// Output ports of router `r` as a flat range (ejection port last).
    pub fn output_ports(&self, r: usize) -> std::ops::Range<usize> {
        self.tables.output_ports(r)
    }

    /// Flat index of router `r`'s injection input port.
    pub fn injection_port(&self, r: usize) -> usize {
        self.tables.injection_port(r)
    }

    /// Flat index of router `r`'s ejection output port.
    pub fn ejection_port(&self, r: usize) -> usize {
        self.tables.ejection_port(r)
    }

    /// Owning router of a flat input port.
    pub fn port_router(&self, port: usize) -> usize {
        self.tables.in_port_router[port] as usize
    }

    /// Destination router of a flat output port ([`NONE_U32`] for ejection).
    pub fn out_to_router(&self, port: usize) -> u32 {
        self.tables.out_dst_router[port]
    }

    /// Destination flat input port of a flat output port.
    pub fn out_dst_port(&self, port: usize) -> u32 {
        self.tables.out_dst_port[port]
    }

    /// Link span of a flat output port.
    pub fn out_span(&self, port: usize) -> u32 {
        self.tables.out_span[port]
    }

    /// Upstream flat output-VC base of a flat input port.
    pub fn credit_base(&self, port: usize) -> u32 {
        self.tables.in_credit_base[port]
    }

    /// Credits of a flat output VC.
    pub fn credits(&self, ovc: usize) -> u32 {
        self.ovc_credits[ovc]
    }

    /// Local output port toward `dst` at router `r`.
    pub fn route_port(&self, r: usize, dst: usize) -> u16 {
        self.tables.route[r * self.tables.routers + dst]
    }

    /// Buffered-flit count of the global input VC `g`.
    pub fn buffer_len(&self, g: usize) -> usize {
        self.vc_len[g] as usize
    }

    /// Applies one returned credit to a flat output VC.
    #[inline]
    pub fn apply_credit(&mut self, ovc: usize) {
        self.ovc_credits[ovc] += 1;
    }

    /// Pushes a flit into global input VC `g`, maintaining the front-flit
    /// mirror and the router's active count.
    #[inline]
    pub fn push_flit(&mut self, g: usize, flit: Flit, eligible: u64) {
        if self.vc_len[g] == 0 {
            if self.vc_route[g] == NONE_U16 {
                self.active_inputs[self.tables.in_port_router[g / self.tables.vcs] as usize] += 1;
            }
            self.front_flit[g] = flit;
            self.front_eligible[g] = eligible;
        } else {
            self.vc_buf[g].push_back(BufferedFlit { flit, eligible });
        }
        self.vc_len[g] += 1;
    }

    /// Pops the front flit of global input VC `g`, refilling the mirror
    /// from the queue. The VC must be non-empty.
    #[inline]
    pub(crate) fn pop_front(&mut self, g: usize) -> Flit {
        let flit = self.front_flit[g];
        self.vc_len[g] -= 1;
        match self.vc_buf[g].pop_front() {
            Some(next) => {
                self.front_flit[g] = next.flit;
                self.front_eligible[g] = next.eligible;
            }
            None => {
                self.front_flit[g].seq = 1;
                self.front_eligible[g] = u64::MAX;
            }
        }
        flit
    }

    /// Number of active input VCs at router `r` (see `active_inputs`).
    pub fn active_inputs(&self, r: usize) -> u32 {
        self.active_inputs[r]
    }

    /// Builds the network for a topology: instantiates two directed port
    /// pairs per physical link, sizes VCs/credits from the config, and
    /// compiles per-router output-port tables from the DOR solve.
    pub fn build(topology: &MeshTopology, dor: &DorRouter, config: &SimConfig) -> Self {
        let tables = Arc::new(NetTables::build(topology, dor, config.vcs_per_port));
        Self::from_tables(tables, config)
    }

    /// Builds fresh dynamic state over shared static tables. The result is
    /// indistinguishable from [`Network::build`] on the same topology.
    pub fn from_tables(tables: Arc<NetTables>, config: &SimConfig) -> Self {
        assert_eq!(
            tables.vcs, config.vcs_per_port,
            "tables were built for a different VC count"
        );
        let routers = tables.routers;
        let vcs = tables.vcs;
        let depth = config.buffer_flits_per_vc as u32;
        let total_in = tables.total_inputs();
        let total_out = tables.total_outputs();

        // Credits are the buffer depth everywhere except ejection ports,
        // whose single consumer is effectively infinite.
        let mut ovc_credits = vec![depth; total_out * vcs];
        for r in 0..routers {
            let ej = tables.ejection_port(r);
            for v in 0..vcs {
                ovc_credits[ej * vcs + v] = u32::MAX / 2;
            }
        }

        Network {
            tables,
            vc_buf: (0..total_in * vcs).map(|_| VecDeque::new()).collect(),
            front_flit: vec![
                Flit {
                    packet: 0,
                    seq: 1,
                    tail: false,
                    dst: 0,
                };
                total_in * vcs
            ],
            front_eligible: vec![u64::MAX; total_in * vcs],
            vc_len: vec![0u32; total_in * vcs],
            vc_route: vec![NONE_U16; total_in * vcs],
            vc_out_vc: vec![NONE_U16; total_in * vcs],
            vc_va_done: vec![u64::MAX; total_in * vcs],
            ovc_owner: vec![NONE_U32; total_out * vcs],
            ovc_credits,
            out_va_rr: vec![0u32; total_out],
            out_sa_rr: vec![0u32; total_out],
            active_inputs: vec![0u32; routers],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::HopWeights;
    use noc_topology::RowPlacement;

    fn build(topo: &MeshTopology) -> Network {
        let dor = DorRouter::new(topo, HopWeights::PAPER);
        Network::build(topo, &dor, &SimConfig::latency_run(256, 0))
    }

    #[test]
    fn mesh_port_counts() {
        let net = build(&MeshTopology::mesh(4));
        // Corner router: 2 link inputs + injection, 2 link outputs + ejection.
        assert_eq!(net.input_ports(0).len(), 3);
        assert_eq!(net.output_ports(0).len(), 3);
        // Centre router (1,1): 4 + 1 each way.
        assert_eq!(net.input_ports(5).len(), 5);
        assert_eq!(net.output_ports(5).len(), 5);
        // Directed channels: 2 per bidirectional link; 24 links on 4x4.
        let link_outs: usize = (0..16).map(|r| net.output_ports(r).len() - 1).sum();
        assert_eq!(link_outs, 48);
    }

    #[test]
    fn express_topology_gets_extra_ports() {
        let row = RowPlacement::with_links(4, [(0, 3)]).unwrap();
        let net = build(&MeshTopology::uniform(4, &row));
        // Corner (0,0): row links to 1 and 3, col links to 4 and 12,
        // + injection = 5 inputs.
        assert_eq!(net.input_ports(0).len(), 5);
    }

    #[test]
    fn route_tables_point_dimension_order() {
        let net = build(&MeshTopology::mesh(4));
        let base = net.output_ports(0).start;
        // Destination 0 (self) -> ejection.
        assert_eq!(base + net.route_port(0, 0) as usize, net.ejection_port(0));
        // Destination (2,0) = id 2: X first -> port toward router 1.
        let p = base + net.route_port(0, 2) as usize;
        assert_eq!(net.out_to_router(p), 1);
        // Destination (0,2) = id 8: same column -> toward router 4.
        let p = base + net.route_port(0, 8) as usize;
        assert_eq!(net.out_to_router(p), 4);
        // Destination (1,1) = id 5: X first.
        let p = base + net.route_port(0, 5) as usize;
        assert_eq!(net.out_to_router(p), 1);
    }

    #[test]
    fn express_route_table_uses_long_links() {
        let row = RowPlacement::with_links(8, [(0, 7)]).unwrap();
        let net = build(&MeshTopology::uniform(8, &row));
        // From (0,0) to (7,0): the direct express link.
        let p = net.output_ports(0).start + net.route_port(0, 7) as usize;
        assert_eq!(net.out_to_router(p), 7);
        assert_eq!(net.out_span(p), 7);
        assert_eq!(net.max_span(), 7);
    }

    #[test]
    fn port_wiring_is_consistent() {
        let row = RowPlacement::with_links(4, [(1, 3)]).unwrap();
        let net = build(&MeshTopology::uniform(4, &row));
        for r in 0..net.routers_len() {
            for o in net.output_ports(r) {
                if o == net.ejection_port(r) {
                    assert_eq!(net.out_dst_port(o), NONE_U32);
                    continue;
                }
                // The destination input port's credit base points back here.
                let dst_port = net.out_dst_port(o) as usize;
                assert_eq!(net.credit_base(dst_port) as usize, o * net.vcs_per_port());
                assert_eq!(net.port_router(dst_port), net.out_to_router(o) as usize);
            }
            // Injection ports return no credits.
            assert_eq!(net.credit_base(net.injection_port(r)), NONE_U32);
        }
    }

    #[test]
    fn credits_match_buffer_depth() {
        let config = SimConfig::latency_run(256, 0);
        let topo = MeshTopology::mesh(4);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let net = Network::build(&topo, &dor, &config);
        for r in 0..net.routers_len() {
            for o in net.output_ports(r) {
                for v in 0..net.vcs_per_port() {
                    let got = net.credits(o * net.vcs_per_port() + v);
                    if o == net.ejection_port(r) {
                        assert!(
                            got > 1 << 30,
                            "ejection credits must be effectively infinite"
                        );
                    } else {
                        assert_eq!(got as usize, config.buffer_flits_per_vc);
                    }
                }
            }
        }
    }

    #[test]
    fn shared_tables_match_fresh_build() {
        // `from_tables` over a shared Arc must equal a fresh `build`.
        let topo = MeshTopology::mesh(4);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let config = SimConfig::latency_run(256, 0);
        let tables = Arc::new(NetTables::build(&topo, &dor, config.vcs_per_port));
        let shared = Network::from_tables(tables.clone(), &config);
        let fresh = Network::build(&topo, &dor, &config);
        assert_eq!(shared.tables.route, fresh.tables.route);
        assert_eq!(shared.ovc_credits, fresh.ovc_credits);
        assert_eq!(shared.tables.in_port_off, fresh.tables.in_port_off);
        assert_eq!(tables.max_total_vcs(), 5 * 2);
    }

    #[test]
    fn fresh_network_is_idle() {
        let net = build(&MeshTopology::mesh(4));
        for r in 0..net.routers_len() {
            assert_eq!(net.active_inputs(r), 0);
        }
    }
}
