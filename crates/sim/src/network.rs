//! Static network structures: routers, ports, virtual channels, channels,
//! and the compiled routing tables.

use crate::config::SimConfig;
use crate::flit::Flit;
use noc_routing::DorRouter;
use noc_topology::MeshTopology;
use std::collections::{HashMap, VecDeque};

/// A flit sitting in a VC buffer with its earliest switch-traversal cycle
/// (`arrival + 2`: BW+RC, VA, then SA — the 3-stage pipeline).
#[derive(Debug, Clone, Copy)]
pub struct BufferedFlit {
    /// The flit itself.
    pub flit: Flit,
    /// Earliest cycle this flit may win switch allocation.
    pub eligible: u64,
}

/// One virtual channel of an input port.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// FIFO of buffered flits (depth enforced upstream via credits; the
    /// injection port is unbounded — it models the NI source queue).
    pub buffer: VecDeque<BufferedFlit>,
    /// Output port of the packet currently owning this VC (set at RC).
    pub route_out: Option<usize>,
    /// Downstream VC allocated to that packet (set at VA).
    pub out_vc: Option<usize>,
    /// Cycle VA succeeded, gating SA to the following cycle.
    pub va_done: Option<u64>,
}

impl InputVc {
    fn new() -> Self {
        InputVc {
            buffer: VecDeque::new(),
            route_out: None,
            out_vc: None,
            va_done: None,
        }
    }
}

/// An input port: a set of VCs plus the upstream output port credits return
/// to (`None` for the injection port).
#[derive(Debug, Clone)]
pub struct InputPort {
    /// The port's virtual channels.
    pub vcs: Vec<InputVc>,
    /// Upstream `(router, output port)` this port's credits flow back to.
    pub upstream: Option<(usize, usize)>,
}

/// Per-output-VC state at an output port.
#[derive(Debug, Clone, Copy)]
pub struct OutVcState {
    /// Input VC `(port, vc)` whose packet currently owns the downstream VC.
    pub owner: Option<(usize, usize)>,
    /// Credits: free buffer slots at the downstream VC.
    pub credits: usize,
}

/// An output port: either a physical channel to a neighbour router or the
/// local ejection port (`channel == usize::MAX`).
#[derive(Debug, Clone)]
pub struct OutputPort {
    /// Downstream router flat id (`usize::MAX` for ejection).
    pub to_router: usize,
    /// Link length in unit segments (0 for ejection).
    pub span: usize,
    /// Index into the network channel table (`usize::MAX` for ejection).
    pub channel: usize,
    /// Downstream VC states.
    pub vcs: Vec<OutVcState>,
    /// Round-robin pointer for VC allocation fairness.
    pub va_rr: usize,
    /// Round-robin pointer for switch allocation fairness.
    pub sa_rr: usize,
}

impl OutputPort {
    /// Whether this is the local ejection port.
    pub fn is_ejection(&self) -> bool {
        self.channel == usize::MAX
    }
}

/// One router's dynamic state.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Link input ports followed by the injection port (last).
    pub inputs: Vec<InputPort>,
    /// Link output ports followed by the ejection port (last).
    pub outputs: Vec<OutputPort>,
    /// Compiled route table: output port index for every destination
    /// (self maps to the ejection port).
    pub out_port_for_dst: Vec<u16>,
}

impl RouterState {
    /// Index of the injection input port.
    pub fn injection_port(&self) -> usize {
        self.inputs.len() - 1
    }

    /// Index of the ejection output port.
    pub fn ejection_port(&self) -> usize {
        self.outputs.len() - 1
    }
}

/// A directed physical channel between two routers. Flits are in flight
/// until their arrival cycle; the queue stays arrival-ordered because the
/// upstream ST issues at most one flit per cycle.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Receiving router flat id.
    pub dst_router: usize,
    /// Receiving input port index at `dst_router`.
    pub dst_port: usize,
    /// Link length in unit segments.
    pub span: usize,
    /// In-flight flits: `(arrival cycle, flit, destination VC)`.
    pub in_flight: VecDeque<(u64, Flit, usize)>,
}

/// The complete static + dynamic network state.
#[derive(Debug, Clone)]
pub struct Network {
    /// Mesh side length.
    pub side: usize,
    /// Router states, indexed by flat id.
    pub routers: Vec<RouterState>,
    /// All directed channels.
    pub channels: Vec<Channel>,
}

impl Network {
    /// Number of routers.
    pub fn routers_len(&self) -> usize {
        self.routers.len()
    }

    /// Builds the network for a topology: instantiates two directed channels
    /// per physical link, sizes ports/VCs/credits from the config, and
    /// compiles per-router output-port tables from the DOR solve.
    pub fn build(topology: &MeshTopology, dor: &DorRouter, config: &SimConfig) -> Self {
        let n = topology.side();
        let routers_len = topology.routers();
        let vcs = config.vcs_per_port;
        let depth = config.buffer_flits_per_vc;

        let mut inputs: Vec<Vec<InputPort>> = vec![Vec::new(); routers_len];
        let mut outputs: Vec<Vec<OutputPort>> = vec![Vec::new(); routers_len];
        let mut channels: Vec<Channel> = Vec::new();
        // neighbour flat id -> output port index, per router.
        let mut out_index: Vec<HashMap<usize, usize>> = vec![HashMap::new(); routers_len];

        for link in topology.links() {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let channel_idx = channels.len();
                let dst_port = inputs[to].len();
                let src_port = outputs[from].len();
                channels.push(Channel {
                    dst_router: to,
                    dst_port,
                    span: link.length,
                    in_flight: VecDeque::new(),
                });
                inputs[to].push(InputPort {
                    vcs: (0..vcs).map(|_| InputVc::new()).collect(),
                    upstream: Some((from, src_port)),
                });
                outputs[from].push(OutputPort {
                    to_router: to,
                    span: link.length,
                    channel: channel_idx,
                    vcs: (0..vcs)
                        .map(|_| OutVcState {
                            owner: None,
                            credits: depth,
                        })
                        .collect(),
                    va_rr: 0,
                    sa_rr: 0,
                });
                out_index[from].insert(to, src_port);
            }
        }

        let mut routers = Vec::with_capacity(routers_len);
        for r in 0..routers_len {
            let mut ins = std::mem::take(&mut inputs[r]);
            let mut outs = std::mem::take(&mut outputs[r]);
            // Injection port: unbounded NI source queues, no upstream.
            ins.push(InputPort {
                vcs: (0..vcs).map(|_| InputVc::new()).collect(),
                upstream: None,
            });
            // Ejection port: one consumer, effectively infinite credit.
            outs.push(OutputPort {
                to_router: usize::MAX,
                span: 0,
                channel: usize::MAX,
                vcs: vec![
                    OutVcState {
                        owner: None,
                        credits: usize::MAX / 2,
                    };
                    vcs
                ],
                va_rr: 0,
                sa_rr: 0,
            });
            let ejection = outs.len() - 1;

            // Compile the route table: next hop per destination via DOR.
            let (rx, ry) = (r % n, r / n);
            let out_port_for_dst: Vec<u16> = (0..routers_len)
                .map(|d| {
                    if d == r {
                        return ejection as u16;
                    }
                    let (dx, dy) = (d % n, d / n);
                    let next = if dx != rx {
                        let nx = dor
                            .row_apsp(ry)
                            .next_hop(rx, dx)
                            .expect("row next hop exists");
                        ry * n + nx
                    } else {
                        let ny = dor
                            .col_apsp(rx)
                            .next_hop(ry, dy)
                            .expect("col next hop exists");
                        ny * n + rx
                    };
                    out_index[r][&next] as u16
                })
                .collect();

            routers.push(RouterState {
                inputs: ins,
                outputs: outs,
                out_port_for_dst,
            });
        }

        Network {
            side: n,
            routers,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::HopWeights;
    use noc_topology::RowPlacement;

    fn build(topo: &MeshTopology) -> Network {
        let dor = DorRouter::new(topo, HopWeights::PAPER);
        Network::build(topo, &dor, &SimConfig::latency_run(256, 0))
    }

    #[test]
    fn mesh_port_counts() {
        let net = build(&MeshTopology::mesh(4));
        // Corner router: 2 link inputs + injection, 2 link outputs + ejection.
        assert_eq!(net.routers[0].inputs.len(), 3);
        assert_eq!(net.routers[0].outputs.len(), 3);
        // Centre router (1,1): 4 + 1 each way.
        assert_eq!(net.routers[5].inputs.len(), 5);
        assert_eq!(net.routers[5].outputs.len(), 5);
        // Channels: 2 per bidirectional link; 24 links on a 4x4 mesh.
        assert_eq!(net.channels.len(), 48);
    }

    #[test]
    fn express_topology_gets_extra_ports() {
        let row = RowPlacement::with_links(4, [(0, 3)]).unwrap();
        let net = build(&MeshTopology::uniform(4, &row));
        // Corner (0,0): row links to 1 and 3, col links to 4 and 12,
        // + injection = 5 inputs.
        assert_eq!(net.routers[0].inputs.len(), 5);
    }

    #[test]
    fn route_tables_point_dimension_order() {
        let net = build(&MeshTopology::mesh(4));
        let r = &net.routers[0];
        // Destination 0 (self) -> ejection.
        assert_eq!(r.out_port_for_dst[0] as usize, r.ejection_port());
        // Destination (2,0) = id 2: X first -> port toward router 1.
        let p = r.out_port_for_dst[2] as usize;
        assert_eq!(net.routers[0].outputs[p].to_router, 1);
        // Destination (0,2) = id 8: same column -> toward router 4.
        let p = r.out_port_for_dst[8] as usize;
        assert_eq!(net.routers[0].outputs[p].to_router, 4);
        // Destination (1,1) = id 5: X first.
        let p = r.out_port_for_dst[5] as usize;
        assert_eq!(net.routers[0].outputs[p].to_router, 1);
    }

    #[test]
    fn express_route_table_uses_long_links() {
        let row = RowPlacement::with_links(8, [(0, 7)]).unwrap();
        let net = build(&MeshTopology::uniform(8, &row));
        // From (0,0) to (7,0): the direct express link.
        let p = net.routers[0].out_port_for_dst[7] as usize;
        assert_eq!(net.routers[0].outputs[p].to_router, 7);
        assert_eq!(net.routers[0].outputs[p].span, 7);
    }

    #[test]
    fn channel_endpoints_are_consistent() {
        let row = RowPlacement::with_links(4, [(1, 3)]).unwrap();
        let net = build(&MeshTopology::uniform(4, &row));
        for (ci, ch) in net.channels.iter().enumerate() {
            let port = &net.routers[ch.dst_router].inputs[ch.dst_port];
            let (up_router, up_port) = port.upstream.expect("link inputs have upstream");
            assert_eq!(net.routers[up_router].outputs[up_port].channel, ci);
            assert_eq!(
                net.routers[up_router].outputs[up_port].to_router,
                ch.dst_router
            );
            assert_eq!(net.routers[up_router].outputs[up_port].span, ch.span);
        }
    }

    #[test]
    fn credits_match_buffer_depth() {
        let config = SimConfig::latency_run(256, 0);
        let topo = MeshTopology::mesh(4);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let net = Network::build(&topo, &dor, &config);
        for r in &net.routers {
            for (oi, out) in r.outputs.iter().enumerate() {
                if oi != r.ejection_port() {
                    for vc in &out.vcs {
                        assert_eq!(vc.credits, config.buffer_flits_per_vc);
                        assert!(vc.owner.is_none());
                    }
                }
            }
        }
    }
}
