//! Measurement results and activity accounting.

/// Per-router switching-activity counters over the measurement window.
/// These are the inputs to the `noc-power` dynamic-power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Flits written into link-input VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of link-input VC buffers.
    pub buffer_reads: u64,
    /// Flits through the crossbar (every SA/ST win, incl. inject/eject).
    pub crossbar_traversals: u64,
    /// Flit·segment products on outgoing links (energy scales with length).
    pub link_flit_segments: u64,
    /// VC allocations performed.
    pub vc_allocations: u64,
}

impl ActivityCounters {
    /// Appends the five counters to a snapshot payload.
    pub fn write_snapshot(&self, w: &mut noc_snapshot::Writer) {
        w.write_u64(self.buffer_writes);
        w.write_u64(self.buffer_reads);
        w.write_u64(self.crossbar_traversals);
        w.write_u64(self.link_flit_segments);
        w.write_u64(self.vc_allocations);
    }

    /// Reads the five counters back from a snapshot payload.
    pub fn read_snapshot(
        r: &mut noc_snapshot::Reader,
    ) -> Result<Self, noc_snapshot::SnapshotError> {
        Ok(ActivityCounters {
            buffer_writes: r.read_u64()?,
            buffer_reads: r.read_u64()?,
            crossbar_traversals: r.read_u64()?,
            link_flit_segments: r.read_u64()?,
            vc_allocations: r.read_u64()?,
        })
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &ActivityCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.link_flit_segments += other.link_flit_segments;
        self.vc_allocations += other.vc_allocations;
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Cycles simulated in total (warmup + measurement + drain).
    pub cycles: u64,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
    /// Number of network nodes.
    pub nodes: usize,
    /// Packets created during the measurement window.
    pub measured_packets: u64,
    /// Measured packets fully delivered before the run ended.
    pub completed_packets: u64,
    /// Mean creation-to-tail-delivery latency of completed measured packets.
    pub avg_packet_latency: f64,
    /// Mean creation-to-head-delivery latency.
    pub avg_head_latency: f64,
    /// Maximum packet latency observed among measured packets.
    pub max_packet_latency: u64,
    /// Median packet latency of completed measured packets.
    pub p50_latency: f64,
    /// 95th-percentile packet latency.
    pub p95_latency: f64,
    /// 99th-percentile packet latency.
    pub p99_latency: f64,
    /// Packets (any) ejected during the measurement window, per node per
    /// cycle — the accepted throughput.
    pub accepted_throughput: f64,
    /// Offered injection rate (packets per node per cycle).
    pub offered_rate: f64,
    /// Mean hop contention: extra cycles beyond zero-load, per completed
    /// packet (diagnostic; the paper reports <1 cycle per hop for PARSEC).
    pub avg_flits_per_packet: f64,
    /// Per-router activity during the measurement window.
    pub activity: Vec<ActivityCounters>,
    /// Whether every measured packet drained before the cycle cap.
    pub drained: bool,
}

impl SimStats {
    /// Stable FNV-1a fingerprint of every field, including the exact bit
    /// patterns of the floating-point aggregates and every per-router
    /// activity counter. Two runs with equal fingerprints produced
    /// bit-identical statistics — the contract the golden regression tests
    /// and the sweep determinism tests pin the engine against.
    pub fn fingerprint(&self) -> u64 {
        // Untagged: this digest predates domain tagging and its historical
        // values are pinned by the golden regression tests.
        let mut h = noc_model::fingerprint::Fnv1a::new();
        h.write_u64(self.cycles);
        h.write_u64(self.measure_cycles);
        h.write_u64(self.nodes as u64);
        h.write_u64(self.measured_packets);
        h.write_u64(self.completed_packets);
        h.write_f64(self.avg_packet_latency);
        h.write_f64(self.avg_head_latency);
        h.write_u64(self.max_packet_latency);
        h.write_f64(self.p50_latency);
        h.write_f64(self.p95_latency);
        h.write_f64(self.p99_latency);
        h.write_f64(self.accepted_throughput);
        h.write_f64(self.offered_rate);
        h.write_f64(self.avg_flits_per_packet);
        for a in &self.activity {
            h.write_u64(a.buffer_writes);
            h.write_u64(a.buffer_reads);
            h.write_u64(a.crossbar_traversals);
            h.write_u64(a.link_flit_segments);
            h.write_u64(a.vc_allocations);
        }
        h.write_u64(self.drained as u64);
        h.finish()
    }

    /// Appends every field to a snapshot payload (the exact float bit
    /// patterns, so a round trip preserves [`SimStats::fingerprint`]).
    pub fn write_snapshot(&self, w: &mut noc_snapshot::Writer) {
        w.write_u64(self.cycles);
        w.write_u64(self.measure_cycles);
        w.write_u64(self.nodes as u64);
        w.write_u64(self.measured_packets);
        w.write_u64(self.completed_packets);
        w.write_f64(self.avg_packet_latency);
        w.write_f64(self.avg_head_latency);
        w.write_u64(self.max_packet_latency);
        w.write_f64(self.p50_latency);
        w.write_f64(self.p95_latency);
        w.write_f64(self.p99_latency);
        w.write_f64(self.accepted_throughput);
        w.write_f64(self.offered_rate);
        w.write_f64(self.avg_flits_per_packet);
        w.write_len(self.activity.len());
        for a in &self.activity {
            a.write_snapshot(w);
        }
        w.write_bool(self.drained);
    }

    /// Reads a full statistics record back from a snapshot payload.
    pub fn read_snapshot(
        r: &mut noc_snapshot::Reader,
    ) -> Result<Self, noc_snapshot::SnapshotError> {
        let cycles = r.read_u64()?;
        let measure_cycles = r.read_u64()?;
        let nodes = r.read_u64()? as usize;
        let measured_packets = r.read_u64()?;
        let completed_packets = r.read_u64()?;
        let avg_packet_latency = r.read_f64()?;
        let avg_head_latency = r.read_f64()?;
        let max_packet_latency = r.read_u64()?;
        let p50_latency = r.read_f64()?;
        let p95_latency = r.read_f64()?;
        let p99_latency = r.read_f64()?;
        let accepted_throughput = r.read_f64()?;
        let offered_rate = r.read_f64()?;
        let avg_flits_per_packet = r.read_f64()?;
        let activity_len = r.read_len(40)?;
        let mut activity = Vec::with_capacity(activity_len);
        for _ in 0..activity_len {
            activity.push(ActivityCounters::read_snapshot(r)?);
        }
        let drained = r.read_bool()?;
        Ok(SimStats {
            cycles,
            measure_cycles,
            nodes,
            measured_packets,
            completed_packets,
            avg_packet_latency,
            avg_head_latency,
            max_packet_latency,
            p50_latency,
            p95_latency,
            p99_latency,
            accepted_throughput,
            offered_rate,
            avg_flits_per_packet,
            activity,
            drained,
        })
    }

    /// Total activity across all routers.
    pub fn total_activity(&self) -> ActivityCounters {
        let mut total = ActivityCounters::default();
        for a in &self.activity {
            total.add(a);
        }
        total
    }

    /// Delivered fraction of measured packets.
    pub fn completion_ratio(&self) -> f64 {
        if self.measured_packets == 0 {
            1.0
        } else {
            self.completed_packets as f64 / self.measured_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = ActivityCounters {
            buffer_writes: 1,
            buffer_reads: 2,
            crossbar_traversals: 3,
            link_flit_segments: 4,
            vc_allocations: 5,
        };
        a.add(&a.clone());
        assert_eq!(a.buffer_writes, 2);
        assert_eq!(a.link_flit_segments, 8);
    }

    #[test]
    fn completion_ratio_handles_empty_runs() {
        let stats = SimStats {
            cycles: 0,
            measure_cycles: 0,
            nodes: 16,
            measured_packets: 0,
            completed_packets: 0,
            avg_packet_latency: 0.0,
            avg_head_latency: 0.0,
            max_packet_latency: 0,
            p50_latency: 0.0,
            p95_latency: 0.0,
            p99_latency: 0.0,
            accepted_throughput: 0.0,
            offered_rate: 0.0,
            avg_flits_per_packet: 0.0,
            activity: vec![],
            drained: true,
        };
        assert_eq!(stats.completion_ratio(), 1.0);
    }
}
