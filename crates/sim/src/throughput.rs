//! Saturation-throughput measurement (Fig. 8b's metric).
//!
//! The accepted throughput of a topology under a traffic pattern is swept by
//! raising the offered injection rate until the network stops accepting it:
//! below saturation accepted ≈ offered; beyond it the accepted rate
//! plateaus (and latencies diverge). We report the plateau — the classic
//! saturation throughput in packets per node per cycle.

use crate::batch::{BatchSimulator, MAX_LANES};
use crate::config::SimConfig;
use crate::engine::{SimScratch, Simulator};
use crate::network::NetTables;
use crate::stats::SimStats;
use noc_routing::DorRouter;
use noc_topology::MeshTopology;
use noc_traffic::Workload;
use std::sync::Arc;

/// One sample of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepSample {
    /// Offered rate (packets per node per cycle).
    pub offered: f64,
    /// Accepted rate measured over the window.
    pub accepted: f64,
    /// Mean packet latency of delivered measured packets (cycles).
    pub avg_latency: f64,
}

/// Result of a saturation sweep.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// All samples, in increasing offered rate.
    pub samples: Vec<SweepSample>,
    /// Saturation throughput: the highest accepted rate observed.
    pub saturation: f64,
}

/// Sweeps offered load geometrically from `start_rate` until the network
/// saturates (accepted < 90% of offered) or the rate reaches 1.0, then
/// refines once between the last two rates.
pub fn saturation_sweep(
    topology: &MeshTopology,
    workload: &Workload,
    config: &SimConfig,
    start_rate: f64,
) -> ThroughputResult {
    SweepRunner::sequential().saturation_sweep(topology, workload, config, start_rate)
}

/// The geometric rate ladder `saturation_sweep` walks: `start`, then
/// `rate · 1.3` capped at `1.0`, ending with the capped point. Computing it
/// up front (with bit-identical arithmetic to the sequential walk) is what
/// lets the parallel sweep speculate ahead of the stopping rule.
fn rate_ladder(start_rate: f64) -> Vec<f64> {
    let growth = 1.3;
    let mut rates = vec![start_rate];
    let mut rate = start_rate;
    while rate < 1.0 {
        rate = (rate * growth).min(1.0);
        rates.push(rate);
    }
    rates
}

fn sample_of(stats: &SimStats) -> SweepSample {
    // Offered load is what the sources actually injected, not the nominal
    // Bernoulli rate: permutation patterns silence their fixed points (e.g.
    // the transpose diagonal), which must not read as saturation.
    let offered =
        stats.measured_packets as f64 / (stats.measure_cycles.max(1) as f64 * stats.nodes as f64);
    SweepSample {
        offered,
        accepted: stats.accepted_throughput,
        avg_latency: stats.avg_packet_latency,
    }
}

/// Default lockstep width: enough lanes to cover a full rate ladder in
/// one or two batch passes while staying well inside [`MAX_LANES`].
const DEFAULT_BATCH_LANES: usize = 8;

/// Below this many parallel items the thread fan-out costs more than it
/// buys (BENCH_sim.json: flat `noc_par` scaling on a 1-core host), so the
/// runner degrades to in-place sequential execution. Results are
/// byte-identical either way — worker assignment never changes inputs.
const SMALL_FANOUT_THRESHOLD: usize = 3;

/// Fans independent (load-point, seed) simulations across `noc-par`
/// workers, packing rate points into [`BatchSimulator`] lockstep lanes
/// (`batch_lanes` per pass). Results are returned in input order and are
/// **bit-identical** for any worker count *and* any lane count, including
/// the sequential scalar reference: each simulation is internally
/// deterministic, the routing/structure tables are shared read-only, the
/// batch engine is replica-exact, and worker assignment only changes
/// *which thread* runs a point, never its inputs. Adaptive sweeps
/// speculate: the whole rate ladder is simulated in wave-sized chunks and
/// the sequential stopping rule is applied afterwards, discarding any
/// points the sequential walk would not have reached.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
    batch_lanes: usize,
}

impl SweepRunner {
    /// A runner with an explicit worker count (`0` = one per core) and the
    /// default lockstep width.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            noc_par::default_workers()
        } else {
            workers
        };
        SweepRunner {
            workers,
            batch_lanes: DEFAULT_BATCH_LANES,
        }
    }

    /// The single-threaded, single-lane scalar reference runner.
    pub fn sequential() -> Self {
        SweepRunner {
            workers: 1,
            batch_lanes: 1,
        }
    }

    /// Sets the lockstep width: how many load points one
    /// [`BatchSimulator`] pass carries. `0` restores the default; `1`
    /// forces the scalar engine; values above [`MAX_LANES`] are clamped.
    pub fn with_batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = match lanes {
            0 => DEFAULT_BATCH_LANES,
            l => l.min(MAX_LANES),
        };
        self
    }

    /// Worker threads this runner fans out across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lockstep lanes per batch pass.
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// The small-batch heuristic: sequential below the fan-out threshold,
    /// never more workers than items.
    fn effective_workers(&self, items: usize) -> usize {
        if items < SMALL_FANOUT_THRESHOLD {
            1
        } else {
            self.workers.min(items)
        }
    }

    /// Simulates one workload per rate in `rates` (sharing one routing
    /// solve and one set of network tables) and returns the full
    /// statistics in input order.
    pub fn run_rates(
        &self,
        topology: &MeshTopology,
        workload: &Workload,
        config: &SimConfig,
        rates: &[f64],
    ) -> Vec<SimStats> {
        let dor = DorRouter::new(topology, config.weights);
        let tables = Arc::new(NetTables::build(topology, &dor, config.vcs_per_port));
        self.run_rates_tables(&tables, workload, config, rates)
    }

    fn run_rates_tables(
        &self,
        tables: &Arc<NetTables>,
        workload: &Workload,
        config: &SimConfig,
        rates: &[f64],
    ) -> Vec<SimStats> {
        let lanes = self.batch_lanes.min(rates.len().max(1));
        if lanes > 1 && BatchSimulator::supported(tables, lanes) {
            // Lockstep path: pack lane-sized groups of load points into one
            // batch pass each and fan the groups across workers.
            let groups: Vec<Vec<f64>> = rates.chunks(lanes).map(<[f64]>::to_vec).collect();
            let stats = noc_par::par_map_with(
                groups,
                self.effective_workers(rates.len().div_ceil(lanes)),
                || (),
                |(), group| {
                    let replicas = group
                        .iter()
                        .map(|&rate| (workload.at_rate(rate), *config))
                        .collect();
                    BatchSimulator::with_tables(Arc::clone(tables), replicas).run()
                },
            );
            stats.into_iter().flatten().collect()
        } else {
            noc_par::par_map_with(
                rates.to_vec(),
                self.effective_workers(rates.len()),
                SimScratch::new,
                |scratch, rate| {
                    Simulator::with_tables(Arc::clone(tables), workload.at_rate(rate), *config)
                        .run_with_scratch(scratch)
                },
            )
        }
    }

    /// Sweeps offered load geometrically from `start_rate` until the
    /// network saturates (accepted < 90% of offered) or the rate reaches
    /// 1.0, then refines once between the last two rates. Samples are
    /// bit-identical to the sequential [`saturation_sweep`] for any worker
    /// count; with more than one worker the ladder is simulated
    /// speculatively in waves.
    pub fn saturation_sweep(
        &self,
        topology: &MeshTopology,
        workload: &Workload,
        config: &SimConfig,
        start_rate: f64,
    ) -> ThroughputResult {
        assert!(start_rate > 0.0 && start_rate <= 1.0);
        let dor = DorRouter::new(topology, config.weights);
        let tables = Arc::new(NetTables::build(topology, &dor, config.vcs_per_port));
        let ladder = rate_ladder(start_rate);

        // Simulate the ladder in waves of (workers × lanes) points,
        // applying the stopping rule after each wave: every sample up to
        // and including the first saturated point is exactly what the
        // sequential walk produces; later points in the same wave are
        // discarded speculation.
        let wave_len = self.workers.max(1) * self.batch_lanes.max(1);
        let mut samples: Vec<SweepSample> = Vec::new();
        let mut stop = ladder.len() - 1;
        'waves: for wave in ladder.chunks(wave_len) {
            let stats = self.run_rates_tables(&tables, workload, config, wave);
            for (k, s) in stats.iter().enumerate() {
                let sample = sample_of(s);
                let rate = wave[k];
                samples.push(sample);
                if sample.accepted < 0.9 * sample.offered || rate >= 1.0 {
                    stop = samples.len() - 1;
                    break 'waves;
                }
            }
        }
        samples.truncate(stop + 1);

        // One refinement step between the last sub-saturation and the first
        // saturated rate sharpens the knee estimate.
        if samples.len() >= 2 {
            let mid = (ladder[stop - 1] + ladder[stop]) / 2.0;
            let stats =
                Simulator::with_tables(Arc::clone(&tables), workload.at_rate(mid), *config).run();
            samples.push(sample_of(&stats));
            samples.sort_by(|a, b| a.offered.total_cmp(&b.offered));
        }

        let saturation = samples.iter().map(|s| s.accepted).fold(0.0f64, f64::max);
        ThroughputResult {
            samples,
            saturation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::PacketMix;
    use noc_traffic::{SyntheticPattern, TrafficMatrix};

    fn ur_workload(n: usize) -> Workload {
        Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            0.01,
            PacketMix::paper(),
        )
    }

    #[test]
    fn below_saturation_accepted_tracks_offered() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::throughput_run(256, 3);
        let stats = SweepRunner::sequential().run_rates(&topo, &ur_workload(4), &config, &[0.02]);
        let s = sample_of(&stats[0]);
        assert!(
            (s.accepted - s.offered).abs() < 0.005,
            "accepted {} vs offered {}",
            s.accepted,
            s.offered
        );
    }

    #[test]
    fn sweep_runner_is_deterministic_across_worker_counts() {
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::throughput_run(256, 7);
        config.warmup_cycles = 500;
        config.measure_cycles = 2_000;
        let workload = ur_workload(4);

        let key = |r: &ThroughputResult| -> Vec<(u64, u64, u64)> {
            r.samples
                .iter()
                .map(|s| {
                    (
                        s.offered.to_bits(),
                        s.accepted.to_bits(),
                        s.avg_latency.to_bits(),
                    )
                })
                .collect()
        };
        let reference = saturation_sweep(&topo, &workload, &config, 0.02);
        for workers in [1usize, 2, 8] {
            let result =
                SweepRunner::new(workers).saturation_sweep(&topo, &workload, &config, 0.02);
            assert_eq!(
                key(&result),
                key(&reference),
                "{workers}-worker sweep must be bit-identical to the sequential reference"
            );
            assert_eq!(result.saturation.to_bits(), reference.saturation.to_bits());
        }
    }

    #[test]
    fn sweep_runner_is_deterministic_across_lane_counts() {
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::throughput_run(256, 11);
        config.warmup_cycles = 500;
        config.measure_cycles = 1_500;
        let workload = ur_workload(4);
        let rates = [0.02, 0.05, 0.09, 0.14, 0.2, 0.3, 0.45];

        let fp =
            |stats: &[SimStats]| -> Vec<u64> { stats.iter().map(SimStats::fingerprint).collect() };
        // Scalar single-worker reference (the small-batch fallback path).
        let reference = SweepRunner::sequential().run_rates(&topo, &workload, &config, &rates);
        for lanes in [1usize, 4, 8] {
            for workers in [1usize, 2] {
                let runner = SweepRunner::new(workers).with_batch_lanes(lanes);
                let result = runner.run_rates(&topo, &workload, &config, &rates);
                assert_eq!(
                    fp(&result),
                    fp(&reference),
                    "lanes={lanes} workers={workers} must be bit-identical to scalar"
                );
            }
        }
    }

    #[test]
    fn sweep_finds_a_finite_saturation() {
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::throughput_run(256, 7);
        config.warmup_cycles = 1_000;
        config.measure_cycles = 4_000;
        let result = saturation_sweep(&topo, &ur_workload(4), &config, 0.02);
        assert!(result.saturation > 0.02, "sat {}", result.saturation);
        assert!(result.saturation < 1.0);
        // Samples are sorted and the last offered rate is saturated or 1.0.
        for w in result.samples.windows(2) {
            assert!(w[0].offered <= w[1].offered);
        }
    }
}
