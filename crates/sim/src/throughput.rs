//! Saturation-throughput measurement (Fig. 8b's metric).
//!
//! The accepted throughput of a topology under a traffic pattern is swept by
//! raising the offered injection rate until the network stops accepting it:
//! below saturation accepted ≈ offered; beyond it the accepted rate
//! plateaus (and latencies diverge). We report the plateau — the classic
//! saturation throughput in packets per node per cycle.

use crate::config::SimConfig;
use crate::engine::Simulator;
use noc_topology::MeshTopology;
use noc_traffic::Workload;

/// One sample of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepSample {
    /// Offered rate (packets per node per cycle).
    pub offered: f64,
    /// Accepted rate measured over the window.
    pub accepted: f64,
    /// Mean packet latency of delivered measured packets (cycles).
    pub avg_latency: f64,
}

/// Result of a saturation sweep.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// All samples, in increasing offered rate.
    pub samples: Vec<SweepSample>,
    /// Saturation throughput: the highest accepted rate observed.
    pub saturation: f64,
}

/// Sweeps offered load geometrically from `start_rate` until the network
/// saturates (accepted < 90% of offered) or the rate reaches 1.0, then
/// refines once between the last two rates.
pub fn saturation_sweep(
    topology: &MeshTopology,
    workload: &Workload,
    config: &SimConfig,
    start_rate: f64,
) -> ThroughputResult {
    assert!(start_rate > 0.0 && start_rate <= 1.0);
    let mut samples = Vec::new();
    let mut rate = start_rate;
    let mut prev_rate = 0.0;
    let growth = 1.3;

    loop {
        let sample = run_at(topology, workload, config, rate);
        let saturated = sample.accepted < 0.9 * sample.offered;
        samples.push(sample);
        if saturated || rate >= 1.0 {
            break;
        }
        prev_rate = rate;
        rate = (rate * growth).min(1.0);
    }

    // One refinement step between the last sub-saturation and the first
    // saturated rate sharpens the knee estimate.
    if samples.len() >= 2 && prev_rate > 0.0 {
        let mid = (prev_rate + rate) / 2.0;
        let sample = run_at(topology, workload, config, mid);
        samples.push(sample);
        samples.sort_by(|a, b| a.offered.total_cmp(&b.offered));
    }

    let saturation = samples.iter().map(|s| s.accepted).fold(0.0f64, f64::max);
    ThroughputResult {
        samples,
        saturation,
    }
}

fn run_at(
    topology: &MeshTopology,
    workload: &Workload,
    config: &SimConfig,
    rate: f64,
) -> SweepSample {
    let stats = Simulator::new(topology, workload.at_rate(rate), *config).run();
    // Offered load is what the sources actually injected, not the nominal
    // Bernoulli rate: permutation patterns silence their fixed points (e.g.
    // the transpose diagonal), which must not read as saturation.
    let offered =
        stats.measured_packets as f64 / (stats.measure_cycles.max(1) as f64 * stats.nodes as f64);
    SweepSample {
        offered,
        accepted: stats.accepted_throughput,
        avg_latency: stats.avg_packet_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::PacketMix;
    use noc_traffic::{SyntheticPattern, TrafficMatrix};

    fn ur_workload(n: usize) -> Workload {
        Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            0.01,
            PacketMix::paper(),
        )
    }

    #[test]
    fn below_saturation_accepted_tracks_offered() {
        let topo = MeshTopology::mesh(4);
        let config = SimConfig::throughput_run(256, 3);
        let s = run_at(&topo, &ur_workload(4), &config, 0.02);
        assert!(
            (s.accepted - s.offered).abs() < 0.005,
            "accepted {} vs offered {}",
            s.accepted,
            s.offered
        );
    }

    #[test]
    fn sweep_finds_a_finite_saturation() {
        let topo = MeshTopology::mesh(4);
        let mut config = SimConfig::throughput_run(256, 7);
        config.warmup_cycles = 1_000;
        config.measure_cycles = 4_000;
        let result = saturation_sweep(&topo, &ur_workload(4), &config, 0.02);
        assert!(result.saturation > 0.02, "sat {}", result.saturation);
        assert!(result.saturation < 1.0);
        // Samples are sorted and the last offered rate is saturated or 1.0.
        for w in result.samples.windows(2) {
            assert!(w[0].offered <= w[1].offered);
        }
    }
}
