//! Per-replica bit-identity: a [`BatchSimulator`] lane must reproduce the
//! scalar [`Simulator`] run of the same (workload, config) **bit for bit**
//! — same fingerprints, lane count 1/4/8, heterogeneous rates/seeds/flit
//! widths/windows, express links, and with tracing enabled. Batching is a
//! performance layer, not a semantics.

use noc_model::PacketMix;
use noc_sim::{BatchSimulator, NetTables, SimConfig, SimStats, Simulator};
use noc_topology::{MeshTopology, RowPlacement};
use noc_traffic::{SyntheticPattern, TrafficMatrix, Workload};
use std::sync::Arc;

fn workload(pattern: SyntheticPattern, n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(pattern, n),
        rate,
        PacketMix::paper(),
    )
}

/// Deterministic pseudo-random (rate, seed) replicas via SplitMix64 — no
/// external RNG needed in the test.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn random_replicas(n: usize, k: usize, salt: u64) -> Vec<(Workload, SimConfig)> {
    use SyntheticPattern::*;
    (0..k)
        .map(|i| {
            let h = mix(salt.wrapping_mul(0x1000) + i as u64);
            let rate = 0.01 + (h % 29) as f64 * 0.01; // 0.01..=0.29
            let seed = mix(h);
            let pattern = match h % 3 {
                0 => UniformRandom,
                1 => Transpose,
                _ => BitReverse,
            };
            let mut config = SimConfig::latency_run(if h & 4 == 0 { 256 } else { 128 }, seed);
            config.warmup_cycles = 200 + (h % 3) * 100;
            config.measure_cycles = 600 + (h % 5) * 100;
            config.drain_cycles_max = 50_000;
            (workload(pattern, n, rate), config)
        })
        .collect()
}

fn scalar_reference(topology: &MeshTopology, replicas: &[(Workload, SimConfig)]) -> Vec<SimStats> {
    replicas
        .iter()
        .map(|(w, c)| Simulator::new(topology, w.clone(), *c).run())
        .collect()
}

fn assert_bit_identical(batch: &[SimStats], scalar: &[SimStats]) {
    assert_eq!(batch.len(), scalar.len());
    for (l, (b, s)) in batch.iter().zip(scalar).enumerate() {
        assert_eq!(
            b.fingerprint(),
            s.fingerprint(),
            "lane {l} diverged from its scalar run:\nbatch:  {b:?}\nscalar: {s:?}"
        );
    }
}

#[test]
fn random_replicas_match_scalar_across_lane_counts() {
    let topology = MeshTopology::mesh(4);
    for &k in &[1usize, 4, 8] {
        let replicas = random_replicas(4, k, k as u64);
        let scalar = scalar_reference(&topology, &replicas);
        let batch = BatchSimulator::new(&topology, replicas).run();
        assert_bit_identical(&batch, &scalar);
    }
}

#[test]
fn express_topology_replicas_match_scalar() {
    let row = RowPlacement::with_links(4, [(0, 3), (1, 3)]).unwrap();
    let topology = MeshTopology::uniform(4, &row);
    let replicas = random_replicas(4, 6, 0xe);
    let scalar = scalar_reference(&topology, &replicas);
    let batch = BatchSimulator::new(&topology, replicas).run();
    assert_bit_identical(&batch, &scalar);
}

#[test]
fn saturated_golden_config_replicas_match_scalar() {
    // The mesh8_ur_saturated golden shape: heavy contention exercises every
    // arbitration path (credit stalls, round-robin wrap, drain timeout).
    let topology = MeshTopology::mesh(8);
    let replicas: Vec<_> = (0..8)
        .map(|i| {
            let mut config = SimConfig::throughput_run(256, 5 + i);
            config.warmup_cycles = 300;
            config.measure_cycles = 800;
            (
                workload(SyntheticPattern::UniformRandom, 8, 0.10 + i as f64 * 0.03),
                config,
            )
        })
        .collect();
    let scalar = scalar_reference(&topology, &replicas);
    let batch = BatchSimulator::new(&topology, replicas).run();
    assert_bit_identical(&batch, &scalar);
}

#[test]
fn shared_tables_constructor_matches_fresh_build() {
    let topology = MeshTopology::mesh(4);
    let replicas = random_replicas(4, 4, 0x7a);
    let config = replicas[0].1;
    let dor = noc_routing::DorRouter::new(&topology, config.weights);
    let tables = Arc::new(NetTables::build(&topology, &dor, config.vcs_per_port));
    assert!(BatchSimulator::supported(&tables, replicas.len()));
    let fresh = BatchSimulator::new(&topology, replicas.clone()).run();
    let shared = BatchSimulator::with_tables(tables, replicas).run();
    assert_bit_identical(&shared, &fresh);
}
