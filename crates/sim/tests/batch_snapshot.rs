//! Batch-engine snapshot/restore: resumed lockstep batches must be
//! bit-identical, lane for lane, to uninterrupted runs — and to the scalar
//! engine, which the batch already mirrors.

use noc_model::PacketMix;
use noc_sim::{BatchSimulator, SimConfig, Simulator};
use noc_snapshot::SnapshotError;
use noc_topology::{MeshTopology, RowPlacement};
use noc_traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn workload(n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
        rate,
        PacketMix::paper(),
    )
}

fn replicas(n: usize) -> Vec<(Workload, SimConfig)> {
    [(0.01, 3u64), (0.03, 5), (0.05, 7), (0.02, 11)]
        .iter()
        .map(|&(rate, seed)| (workload(n, rate), SimConfig::latency_run(256, seed)))
        .collect()
}

#[test]
fn batch_snapshot_resumes_bit_identically() {
    let topo = MeshTopology::mesh(4);
    let reference: Vec<u64> = BatchSimulator::new(&topo, replicas(4))
        .run()
        .iter()
        .map(|s| s.fingerprint())
        .collect();

    for cut in [1, 400, 1_700] {
        let mut batch = BatchSimulator::new(&topo, replicas(4));
        batch.run_until(cut);
        let hash_before = batch.state_hash();
        let bytes = batch.snapshot();
        let restored = BatchSimulator::restore(&topo, replicas(4), &bytes).expect("restore");
        assert_eq!(restored.state_hash(), hash_before, "hash at cut {cut}");
        assert_eq!(restored.cycle(), cut);
        let resumed: Vec<u64> = restored.run().iter().map(|s| s.fingerprint()).collect();
        assert_eq!(resumed, reference, "resume from cut {cut} diverged");
    }
}

#[test]
fn batch_snapshot_roundtrip_preserves_bytes() {
    let topo = MeshTopology::uniform(4, &RowPlacement::with_links(4, [(0, 3)]).unwrap());
    let mut batch = BatchSimulator::new(&topo, replicas(4));
    batch.run_until(900);
    let bytes = batch.snapshot();
    let restored = BatchSimulator::restore(&topo, replicas(4), &bytes).unwrap();
    assert_eq!(restored.snapshot(), bytes);
}

#[test]
fn batch_resume_matches_scalar_engine() {
    // The chain of guarantees end to end: scalar run == batch lane ==
    // resumed batch lane.
    let topo = MeshTopology::mesh(4);
    let scalar: Vec<u64> = replicas(4)
        .into_iter()
        .map(|(w, c)| Simulator::new(&topo, w, c).run().fingerprint())
        .collect();

    let mut batch = BatchSimulator::new(&topo, replicas(4));
    batch.run_until(1_234);
    let bytes = batch.snapshot();
    let resumed: Vec<u64> = BatchSimulator::restore(&topo, replicas(4), &bytes)
        .unwrap()
        .run()
        .iter()
        .map(|s| s.fingerprint())
        .collect();
    assert_eq!(resumed, scalar);
}

#[test]
fn batch_snapshot_keeps_finished_lane_stats() {
    // Lanes with very different windows: snapshot after the short lane has
    // retired but before the long one finishes; its stats must survive the
    // round trip.
    let topo = MeshTopology::mesh(4);
    let mk = || {
        let mut short = SimConfig::latency_run(256, 3);
        short.warmup_cycles = 50;
        short.measure_cycles = 200;
        let long = SimConfig::latency_run(256, 5);
        vec![(workload(4, 0.01), short), (workload(4, 0.02), long)]
    };
    let reference: Vec<u64> = BatchSimulator::new(&topo, mk())
        .run()
        .iter()
        .map(|s| s.fingerprint())
        .collect();

    let mut batch = BatchSimulator::new(&topo, mk());
    let done = batch.run_until(1_000);
    assert!(!done, "long lane should still be running");
    let bytes = batch.snapshot();
    let resumed: Vec<u64> = BatchSimulator::restore(&topo, mk(), &bytes)
        .unwrap()
        .run()
        .iter()
        .map(|s| s.fingerprint())
        .collect();
    assert_eq!(resumed, reference);
}

#[test]
fn batch_restore_rejects_mismatched_replicas() {
    let topo = MeshTopology::mesh(4);
    let mut batch = BatchSimulator::new(&topo, replicas(4));
    batch.run_until(100);
    let bytes = batch.snapshot();

    // A different seed on lane 0 changes its config fingerprint.
    let mut wrong = replicas(4);
    wrong[0].1.seed = 99;
    assert!(matches!(
        BatchSimulator::restore(&topo, wrong, &bytes),
        Err(SnapshotError::Mismatch {
            field: "lane config"
        })
    ));
    // A different rate on lane 1 changes its workload fingerprint.
    let mut wrong = replicas(4);
    wrong[1].0 = workload(4, 0.07);
    assert!(matches!(
        BatchSimulator::restore(&topo, wrong, &bytes),
        Err(SnapshotError::Mismatch {
            field: "lane workload"
        })
    ));
    // A different lane count fails the dimension gate.
    let fewer: Vec<_> = replicas(4).into_iter().take(2).collect();
    assert!(matches!(
        BatchSimulator::restore(&topo, fewer, &bytes),
        Err(SnapshotError::Mismatch {
            field: "lane count"
        })
    ));
}
