//! Batch telemetry, in its own test binary because tracing is a
//! process-global switch: tracing-on bit-identity (lane stats must not be
//! perturbed, and must still match tracing-on scalar runs), the
//! `sim.batch.*` counter deltas, and the lane-occupancy histogram.

use noc_model::PacketMix;
use noc_sim::{BatchSimulator, SimConfig, SimStats, Simulator};
use noc_topology::MeshTopology;
use noc_traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn replicas(k: usize) -> Vec<(Workload, SimConfig)> {
    (0..k)
        .map(|i| {
            let mut config = SimConfig::latency_run(256, 0xb0 + i as u64);
            config.warmup_cycles = 200;
            // Stagger windows so lanes finish at different cycles and the
            // early-finish masking path actually runs.
            config.measure_cycles = 400 + 150 * i as u64;
            let matrix = TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4);
            let rate = 0.04 + 0.02 * i as f64;
            (Workload::new(matrix, rate, PacketMix::paper()), config)
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    noc_trace::registry_snapshot()
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

fn fingerprints(stats: &[SimStats]) -> Vec<u64> {
    stats.iter().map(|s| s.fingerprint()).collect()
}

#[test]
fn tracing_on_keeps_bit_identity_and_counts_batch_metrics() {
    let topology = MeshTopology::mesh(4);
    let quiet = BatchSimulator::new(&topology, replicas(4)).run();

    noc_trace::enable_with_capacity(65_536);
    let runs0 = counter("sim.batch.runs");
    let lanes0 = counter("sim.batch.lanes");
    let masked0 = counter("sim.batch.masked_cycles");

    let traced = BatchSimulator::new(&topology, replicas(4)).run();
    let scalar: Vec<SimStats> = replicas(4)
        .into_iter()
        .map(|(w, c)| Simulator::new(&topology, w, c).run())
        .collect();
    let batch_events = noc_trace::drain_events();

    let runs1 = counter("sim.batch.runs");
    let lanes1 = counter("sim.batch.lanes");
    let masked1 = counter("sim.batch.masked_cycles");
    let snapshot = noc_trace::registry_snapshot();
    noc_trace::disable();

    // Tracing must not perturb any lane: bit-identical to the quiet batch
    // and to tracing-on scalar runs.
    assert_eq!(fingerprints(&traced), fingerprints(&quiet));
    assert_eq!(fingerprints(&traced), fingerprints(&scalar));

    // Counter deltas: one batch run of 4 lanes; staggered windows force
    // early finishers to idle in masked lockstep slots.
    assert_eq!(runs1 - runs0, 1);
    assert_eq!(lanes1 - lanes0, 4);
    assert!(
        masked1 - masked0 > 0,
        "staggered lanes must accumulate masked cycles"
    );

    // Lane-occupancy histogram sampled once per lockstep cycle: every
    // recorded value is the live-lane count, 1..=K.
    let occupancy = snapshot
        .get("histograms")
        .and_then(|h| h.get("sim.batch.lane_occupancy"))
        .expect("lane occupancy histogram registered");
    let count = occupancy.get("count").and_then(|v| v.as_u64()).unwrap();
    let sum = occupancy.get("sum").and_then(|v| v.as_u64()).unwrap();
    assert!(count > 0);
    assert!(sum >= count && sum <= count * 4, "live lanes in 1..=4");

    // The batch emits the scalar engine's sim.link / sim.router series.
    assert!(batch_events.iter().any(|e| e.name == "sim.link"));
    assert!(batch_events.iter().any(|e| e.name == "sim.router"));
}
