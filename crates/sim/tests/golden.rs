//! Golden-stat regression tests: reference [`SimStats`] fingerprints for a
//! matrix of (topology, workload, config, seed) cases, recorded from the
//! pre-fast-path engine. The engine must reproduce every run **bit for
//! bit** — these constants are the safety net under any hot-path rewrite
//! (event wheel, SoA layout, scratch reuse must all be invisible here).
//!
//! To regenerate after an *intentional* semantic change (there should be
//! none: the simulator's cycle-exact behaviour is part of its contract):
//!
//! ```text
//! NOC_GOLDEN_PRINT=1 cargo test -p noc-sim --release --test golden -- --nocapture
//! ```

use noc_model::PacketMix;
use noc_sim::{SimConfig, SimStats, Simulator};
use noc_topology::{hfb_mesh, MeshTopology, RowPlacement};
use noc_traffic::{SyntheticPattern, Trace, TraceEvent, TrafficMatrix, Workload};

/// Reference fingerprints recorded from the seed engine (see module docs).
const GOLDEN: &[(&str, u64)] = &[
    ("mesh4_ur_low", 0x8f15d90ccec1227e),
    ("mesh4_tp_hot", 0xe761567f1a688a67),
    ("mesh4_ur_1vc", 0x2101d1c05ba84bcb),
    ("express4_ur_128b", 0x51e2b8a0630f92bb),
    ("mesh8_ur_saturated", 0xd6d2bb1ab55b5a9e),
    ("express8_br_64b", 0x318ee105cfd238fd),
    ("hfb8_shuffle", 0xc20ebfd2731978f7),
    ("mesh8_nn_deep_buffers", 0xa998b02b3df5d017),
    ("mesh4_burst_trace", 0xaa4388d3a3fd9da2),
    ("mesh16_ur_low", 0x24d2030bc4daded0),
];

fn short(mut config: SimConfig, warmup: u64, measure: u64) -> SimConfig {
    config.warmup_cycles = warmup;
    config.measure_cycles = measure;
    config
}

fn workload(pattern: SyntheticPattern, n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(pattern, n),
        rate,
        PacketMix::paper(),
    )
}

fn express(n: usize, links: &[(usize, usize)]) -> MeshTopology {
    let row = RowPlacement::with_links(n, links.iter().copied()).unwrap();
    MeshTopology::uniform(n, &row)
}

/// Runs one named case and returns its statistics.
fn run_case(name: &str) -> SimStats {
    use SyntheticPattern::*;
    match name {
        "mesh4_ur_low" => Simulator::new(
            &MeshTopology::mesh(4),
            workload(UniformRandom, 4, 0.02),
            short(SimConfig::latency_run(256, 1), 500, 2_000),
        )
        .run(),
        "mesh4_tp_hot" => Simulator::new(
            &MeshTopology::mesh(4),
            workload(Transpose, 4, 0.10),
            short(SimConfig::latency_run(256, 2), 500, 2_000),
        )
        .run(),
        "mesh4_ur_1vc" => {
            let mut config = short(SimConfig::latency_run(256, 3), 500, 2_000);
            config.vcs_per_port = 1;
            config.buffer_flits_per_vc = 2;
            Simulator::new(
                &MeshTopology::mesh(4),
                workload(UniformRandom, 4, 0.05),
                config,
            )
            .run()
        }
        "express4_ur_128b" => Simulator::new(
            &express(4, &[(0, 3)]),
            workload(UniformRandom, 4, 0.03),
            short(SimConfig::latency_run(128, 4), 500, 2_000),
        )
        .run(),
        "mesh8_ur_saturated" => Simulator::new(
            &MeshTopology::mesh(8),
            workload(UniformRandom, 8, 0.30),
            short(SimConfig::throughput_run(256, 5), 500, 1_500),
        )
        .run(),
        "express8_br_64b" => Simulator::new(
            &express(8, &[(0, 3), (3, 7)]),
            workload(BitReverse, 8, 0.02),
            short(SimConfig::latency_run(64, 6), 500, 2_000),
        )
        .run(),
        "hfb8_shuffle" => Simulator::new(
            &hfb_mesh(8),
            workload(Shuffle, 8, 0.05),
            short(SimConfig::latency_run(64, 7), 500, 2_000),
        )
        .run(),
        "mesh8_nn_deep_buffers" => {
            let mut config = short(SimConfig::latency_run(256, 8), 500, 2_000);
            config.buffer_flits_per_vc = 8;
            Simulator::new(
                &MeshTopology::mesh(8),
                workload(NearNeighbour, 8, 0.08),
                config,
            )
            .run()
        }
        "mesh4_burst_trace" => {
            let events = (0..24)
                .map(|i| TraceEvent {
                    cycle: 8 + (i / 6) as u64,
                    src: (i % 3) as usize,
                    dst: 12 + (i % 4) as usize,
                    bits: 256 + 128 * (i % 2) as u32,
                })
                .collect();
            let trace = Trace::new(4, events);
            let mut config = short(SimConfig::latency_run(128, 9), 0, 1_000);
            config.drain_cycles_max = 50_000;
            Simulator::from_trace(&MeshTopology::mesh(4), trace, config).run()
        }
        "mesh16_ur_low" => Simulator::new(
            &MeshTopology::mesh(16),
            workload(UniformRandom, 16, 0.02),
            short(SimConfig::latency_run(256, 10), 300, 800),
        )
        .run(),
        other => panic!("unknown golden case {other:?}"),
    }
}

#[test]
fn engine_reproduces_golden_fingerprints() {
    let print = std::env::var("NOC_GOLDEN_PRINT").is_ok_and(|v| v == "1");
    let mut failures = Vec::new();
    for &(name, expected) in GOLDEN {
        let stats = run_case(name);
        let got = stats.fingerprint();
        if print {
            println!("    (\"{name}\", {got:#018x}),");
        }
        if got != expected {
            failures.push(format!(
                "{name}: fingerprint {got:#018x} != golden {expected:#018x} \
                 (packets {}/{}, avg latency {})",
                stats.completed_packets, stats.measured_packets, stats.avg_packet_latency
            ));
        }
    }
    if !print {
        assert!(
            failures.is_empty(),
            "golden mismatches:\n{}",
            failures.join("\n")
        );
    }
}

#[test]
fn fingerprints_unchanged_with_tracing_enabled() {
    // Telemetry reads simulation state but never perturbs the RNG stream
    // or arbitration: with the global sink enabled, every run must still
    // reproduce its golden fingerprint bit for bit — and must emit the
    // per-link utilization series.
    noc_trace::enable_with_capacity(65_536);
    for name in ["mesh4_tp_hot", "express8_br_64b", "mesh8_ur_saturated"] {
        let expected = GOLDEN
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, f)| f)
            .unwrap();
        let got = run_case(name).fingerprint();
        assert_eq!(
            got, expected,
            "{name}: tracing perturbed the simulation ({got:#018x} != {expected:#018x})"
        );
    }
    let events = noc_trace::drain_events();
    noc_trace::disable();
    assert!(
        events.iter().any(|e| e.name == "sim.link"),
        "instrumented runs emit per-link utilization events"
    );
    assert!(
        events.iter().any(|e| e.name == "sim.router"),
        "instrumented runs emit per-router events"
    );
}

#[test]
fn golden_runs_are_internally_deterministic() {
    // The fingerprints above are only meaningful if a run is reproducible
    // within one build; pin that separately from the cross-version contract.
    let a = run_case("mesh4_tp_hot").fingerprint();
    let b = run_case("mesh4_tp_hot").fingerprint();
    assert_eq!(a, b);
}
