//! Microarchitectural scenario tests for the simulator: flow control under
//! tiny buffers, single-VC operation, ejection bottlenecks, and exact
//! express-link timing.

use noc_model::PacketMix;
use noc_sim::{SimConfig, Simulator};
use noc_topology::{MeshTopology, RowPlacement};
use noc_traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn ur(n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
        rate,
        PacketMix::paper(),
    )
}

#[test]
fn single_flit_buffers_still_drain() {
    // Depth-1 VC buffers exercise the credit loop hard: every flit must wait
    // for the previous one's credit to return. Throughput suffers; nothing
    // may deadlock or be lost.
    let mut config = SimConfig::latency_run(256, 3);
    config.buffer_flits_per_vc = 1;
    config.warmup_cycles = 500;
    config.measure_cycles = 4_000;
    let stats = Simulator::new(&MeshTopology::mesh(4), ur(4, 0.02), config).run();
    assert!(stats.drained, "depth-1 buffers wedged the network");
    assert_eq!(stats.completed_packets, stats.measured_packets);
}

#[test]
fn single_virtual_channel_is_deadlock_free() {
    // DOR needs no VCs for deadlock freedom (the CDG is acyclic); one VC per
    // port must still drain permutation traffic.
    let mut config = SimConfig::latency_run(256, 5);
    config.vcs_per_port = 1;
    config.warmup_cycles = 500;
    config.measure_cycles = 4_000;
    let workload = Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 4),
        0.05,
        PacketMix::paper(),
    );
    let stats = Simulator::new(&MeshTopology::mesh(4), workload, config).run();
    assert!(stats.drained, "single-VC transpose wedged");
    assert_eq!(stats.completed_packets, stats.measured_packets);
}

#[test]
fn hotspot_ejection_is_the_bottleneck() {
    // Everyone sends to router 0. The single ejection port delivers at most
    // one flit per cycle, so accepted throughput is capped by
    // 1 / mean_flits packets per cycle network-wide.
    let n = 4;
    let routers = n * n;
    let mut rates = vec![0.0; routers * routers];
    for src in 1..routers {
        rates[src * routers] = 1.0;
    }
    let workload = Workload::new(
        TrafficMatrix::from_rates(n, rates),
        0.2, // far beyond the ejection capacity of ~0.625/16 per node
        PacketMix::paper(),
    );
    let mut config = SimConfig::throughput_run(256, 7);
    config.warmup_cycles = 1_000;
    config.measure_cycles = 5_000;
    let stats = Simulator::new(&MeshTopology::mesh(n), workload, config).run();
    let network_accept = stats.accepted_throughput * routers as f64;
    let cap = 1.0 / PacketMix::paper().mean_flits(256);
    assert!(
        network_accept <= cap * 1.05,
        "accepted {network_accept} exceeds ejection cap {cap}"
    );
    assert!(
        network_accept > cap * 0.7,
        "accepted {network_accept} nowhere near the cap {cap} — scheduling bug?"
    );
}

#[test]
fn express_link_timing_is_exact() {
    // Single flow over a direct express link of span 7: head latency is
    // exactly T_r + 7 + T_r = 13 cycles, packet +1 flit at 512b/256b.
    let n = 8;
    let row = RowPlacement::with_links(n, [(0, 7)]).unwrap();
    let topo = MeshTopology::uniform(n, &row);
    let routers = n * n;
    let mut rates = vec![0.0; routers * routers];
    rates[7] = 1.0; // (0,0) -> (7,0)
    let workload = Workload::new(
        TrafficMatrix::from_rates(n, rates),
        0.002,
        PacketMix::uniform(512),
    );
    let stats = Simulator::new(&topo, workload, SimConfig::latency_run(256, 11)).run();
    // Head 13, tail = head + (2 flits - 1) = 14. The rare back-to-back
    // injection queues briefly in the NI, so the *median* is the exact
    // zero-load figure and the mean sits just above it.
    assert_eq!(stats.p50_latency, 14.0);
    assert!(
        stats.avg_packet_latency >= 14.0 && stats.avg_packet_latency < 14.3,
        "got {}",
        stats.avg_packet_latency
    );
}

#[test]
fn percentiles_are_ordered_and_bounded() {
    let stats = Simulator::new(
        &MeshTopology::mesh(4),
        ur(4, 0.05),
        SimConfig::latency_run(256, 13),
    )
    .run();
    assert!(stats.p50_latency <= stats.p95_latency);
    assert!(stats.p95_latency <= stats.p99_latency);
    assert!(stats.p99_latency <= stats.max_packet_latency as f64);
    assert!(stats.p50_latency > 0.0);
    // The mean sits between the median and the max under right-skewed load.
    assert!(stats.avg_packet_latency >= stats.p50_latency * 0.8);
}

#[test]
fn narrow_links_shift_the_latency_distribution_up() {
    // Same topology and traffic, 4x narrower flits: every multi-flit packet
    // serialises longer, so mean and p95 both move up.
    let wide = Simulator::new(
        &MeshTopology::mesh(4),
        ur(4, 0.01),
        SimConfig::latency_run(256, 17),
    )
    .run();
    let narrow = Simulator::new(
        &MeshTopology::mesh(4),
        ur(4, 0.01),
        SimConfig::latency_run(64, 17),
    )
    .run();
    assert!(narrow.avg_packet_latency > wide.avg_packet_latency);
    assert!(narrow.p95_latency >= wide.p95_latency);
    assert!(narrow.avg_flits_per_packet > wide.avg_flits_per_packet);
}
