//! Versioned binary snapshot format for resumable engines.
//!
//! Long SA solves and long simulations need to survive daemon restarts
//! and migrate between cluster nodes. This crate defines the one wire
//! format both engines checkpoint into: a little-endian binary layout
//! with a magic tag, a format version gate, a kind string identifying
//! the producing engine, and a trailing FNV-1a integrity digest over
//! everything that precedes it.
//!
//! ```text
//! +-------+---------+------------------------------+--------+
//! | magic | version | kind (len-prefixed) + fields | digest |
//! | NSNP  | u16 LE  | engine-defined payload       | u64 LE |
//! +-------+---------+------------------------------+--------+
//! ```
//!
//! Reading validates in a fixed order — magic, version, digest, kind —
//! so a truncated, bit-flipped, or future-versioned snapshot always
//! yields a structured [`SnapshotError`] and never a panic or a
//! silently-wrong resume. Engines layer their own semantic checks
//! (config fingerprints, array lengths) on top via
//! [`SnapshotError::Mismatch`].
//!
//! The format is append-only within a version: readers consume exactly
//! the fields they wrote ([`Reader::finish`] rejects trailing payload
//! bytes), and any layout change bumps [`VERSION`].

#![warn(missing_docs)]

use noc_model::fingerprint::Fnv1a;
use std::fmt;

/// Magic tag opening every snapshot: `NSNP`.
pub const MAGIC: [u8; 4] = *b"NSNP";

/// Current snapshot format version. Any layout change bumps this; a
/// reader only accepts snapshots of exactly this version.
pub const VERSION: u16 = 1;

/// Structured failure when decoding a snapshot. Every malformed input
/// maps to one of these variants — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the declared content did.
    Truncated,
    /// The leading magic bytes are not `NSNP`.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the snapshot header.
        found: u16,
        /// The single version this reader supports.
        supported: u16,
    },
    /// The trailing integrity digest does not match the content.
    DigestMismatch,
    /// A decoded field is semantically incompatible with the target
    /// engine (wrong kind, config fingerprint, dimensions, …).
    Mismatch {
        /// Which field failed validation.
        field: &'static str,
    },
    /// A decoded field holds a value the format forbids (e.g. a bool
    /// byte that is neither 0 nor 1, or an oversized length prefix).
    Corrupt {
        /// Which field was malformed.
        field: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::DigestMismatch => write!(f, "snapshot integrity digest mismatch"),
            SnapshotError::Mismatch { field } => {
                write!(f, "snapshot does not match this engine: {field}")
            }
            SnapshotError::Corrupt { field } => write!(f, "corrupt snapshot field: {field}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Computes the trailing integrity digest over the framed bytes
/// (magic + version + payload).
fn content_digest(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::with_tag("noc-snapshot");
    h.write_bytes(bytes);
    h.finish()
}

/// Serialises one snapshot: fixed header, engine payload, trailing
/// digest. All multi-byte values are little-endian.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a snapshot of the given engine `kind` (e.g. `"sa-job"`,
    /// `"sim-scalar"`). The kind is the first payload field and is
    /// checked by [`Reader::new`].
    pub fn new(kind: &str) -> Self {
        let mut w = Writer {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(&MAGIC);
        w.buf.extend_from_slice(&VERSION.to_le_bytes());
        w.write_str(kind);
        w
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length prefix (u32 LE). Panics if `len` exceeds u32 —
    /// no in-repo snapshot approaches 4 Gi elements.
    pub fn write_len(&mut self, len: usize) {
        self.write_u32(u32::try_from(len).expect("snapshot sequence too long"));
    }

    /// Appends raw bytes with a length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string with a length prefix.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Appends a u64 slice with a length prefix.
    pub fn write_u64s(&mut self, vs: &[u64]) {
        self.write_len(vs.len());
        for &v in vs {
            self.write_u64(v);
        }
    }

    /// Appends a u32 slice with a length prefix.
    pub fn write_u32s(&mut self, vs: &[u32]) {
        self.write_len(vs.len());
        for &v in vs {
            self.write_u32(v);
        }
    }

    /// Appends an f64 slice with a length prefix (bit-exact).
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_len(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Appends a bool slice with a length prefix.
    pub fn write_bools(&mut self, vs: &[bool]) {
        self.write_len(vs.len());
        for &v in vs {
            self.write_bool(v);
        }
    }

    /// Seals the snapshot: appends the integrity digest and returns the
    /// complete byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        let digest = content_digest(&self.buf);
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.buf
    }
}

/// Decodes one snapshot, validating magic, version, digest, and kind up
/// front, then field by field. All reads bounds-check; none panic.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Opens a snapshot, validating in order: magic, version, trailing
    /// digest, then the kind string against `expected_kind`.
    pub fn new(bytes: &'a [u8], expected_kind: &str) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 2 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if content_digest(content) != stored {
            return Err(SnapshotError::DigestMismatch);
        }
        let mut r = Reader {
            bytes: content,
            pos: MAGIC.len() + 2,
        };
        let kind = r.read_str()?;
        if kind != expected_kind {
            return Err(SnapshotError::Mismatch { field: "kind" });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn read_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 from its IEEE-754 bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { field: "bool byte" }),
        }
    }

    /// Reads a length prefix for a sequence of `elem_bytes`-sized
    /// elements, rejecting lengths the remaining bytes cannot hold
    /// (bounds the allocation a corrupt prefix could demand).
    pub fn read_len(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.read_u32()? as usize;
        let need = len
            .checked_mul(elem_bytes.max(1))
            .ok_or(SnapshotError::Corrupt {
                field: "length prefix",
            })?;
        match self.pos.checked_add(need) {
            Some(end) if end <= self.bytes.len() => {}
            _ => return Err(SnapshotError::Truncated),
        }
        Ok(len)
    }

    /// Reads a length-prefixed byte string.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.read_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.read_bytes()?).map_err(|_| SnapshotError::Corrupt {
            field: "utf-8 string",
        })
    }

    /// Reads a length-prefixed u64 slice.
    pub fn read_u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.read_len(8)?;
        (0..len).map(|_| self.read_u64()).collect()
    }

    /// Reads a length-prefixed u32 slice.
    pub fn read_u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.read_len(4)?;
        (0..len).map(|_| self.read_u32()).collect()
    }

    /// Reads a length-prefixed f64 slice (bit-exact).
    pub fn read_f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let len = self.read_len(8)?;
        (0..len).map(|_| self.read_f64()).collect()
    }

    /// Reads a length-prefixed bool slice.
    pub fn read_bools(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let len = self.read_len(1)?;
        (0..len).map(|_| self.read_bool()).collect()
    }

    /// Asserts every payload byte was consumed. A snapshot with extra
    /// payload was written by a different layout and must not resume.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt {
                field: "trailing payload bytes",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = Writer::new("test-kind");
        w.write_u64(0xDEAD_BEEF_u64);
        w.write_f64(1.5);
        w.write_bool(true);
        w.write_u64s(&[1, 2, 3]);
        w.write_str("hello");
        w.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let mut r = Reader::new(&bytes, "test-kind").unwrap();
        assert_eq!(r.read_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_f64().unwrap(), 1.5);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.read_str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn wrong_kind_is_mismatch() {
        let bytes = sample();
        assert_eq!(
            Reader::new(&bytes, "other").unwrap_err(),
            SnapshotError::Mismatch { field: "kind" }
        );
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Reader::new(&bytes, "test-kind").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_gate() {
        let mut bytes = sample();
        bytes[4] = 99;
        bytes[5] = 0;
        // Re-sign so the digest passes were it checked first; the version
        // gate must still fire (it is checked before the digest).
        let n = bytes.len() - 8;
        let d = content_digest(&bytes[..n]);
        bytes[n..].copy_from_slice(&d.to_le_bytes());
        assert_eq!(
            Reader::new(&bytes, "test-kind").unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            }
        );
    }

    #[test]
    fn bit_flip_breaks_digest() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert_eq!(
            Reader::new(&bytes, "test-kind").unwrap_err(),
            SnapshotError::DigestMismatch
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample();
        // Any truncation must fail at header validation: the digest covers
        // the whole stream, so a shorter stream cannot re-validate.
        for cut in 0..bytes.len() {
            assert!(
                Reader::new(&bytes[..cut], "test-kind").is_err(),
                "cut at {cut} was accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new("k");
        w.write_u64(7);
        w.write_u64(8);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes, "k").unwrap();
        assert_eq!(r.read_u64().unwrap(), 7);
        assert_eq!(
            r.finish().unwrap_err(),
            SnapshotError::Corrupt {
                field: "trailing payload bytes"
            }
        );
    }

    #[test]
    fn oversized_length_prefix_is_bounded() {
        let mut w = Writer::new("k");
        w.write_u32(u32::MAX); // a length prefix the stream cannot hold
        let bytes = w.finish();
        let mut r = Reader::new(&bytes, "k").unwrap();
        assert!(r.read_u64s().is_err());
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut w = Writer::new("k");
        w.write_u8(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes, "k").unwrap();
        assert_eq!(
            r.read_bool().unwrap_err(),
            SnapshotError::Corrupt { field: "bool byte" }
        );
    }
}
