//! Snapshot/restore round-trip property tests: snapshot each engine at a
//! random (seeded) pause point, restore from the bytes, and check that the
//! resumed run is **bit-identical** to the uninterrupted one — statistics
//! fingerprints for the simulators, full outcomes for the annealer — and
//! that the rolling state hash survives the round trip exactly.
//!
//! These tests live in `noc-snapshot` (as dev-dependency cycles back onto
//! the engines) so the wire format, the serializers, and the engines are
//! exercised together whenever the format crate changes.

use noc_model::PacketMix;
use noc_placement::objective::AllPairsObjective;
use noc_placement::{InitialStrategy, SaParams, SolveJob};
use noc_rng::rngs::SmallRng;
use noc_rng::{Rng, SeedableRng};
use noc_sim::{BatchSimulator, SimConfig, Simulator};
use noc_topology::{MeshTopology, RowPlacement};
use noc_traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn workload(pattern: SyntheticPattern, n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(pattern, n),
        rate,
        PacketMix::paper(),
    )
}

fn sim_config(flit: u32, seed: u64) -> SimConfig {
    let mut config = SimConfig::latency_run(flit, seed);
    config.warmup_cycles = 300;
    config.measure_cycles = 1_200;
    config
}

#[test]
fn scalar_sim_roundtrip_is_bit_identical_at_random_cycles() {
    let mut pick = SmallRng::seed_from_u64(0x5eed_0001);
    let topo = {
        let row = RowPlacement::with_links(8, [(0, 3), (3, 7)]).unwrap();
        MeshTopology::uniform(8, &row)
    };
    for trial in 0..6u64 {
        let wl = workload(SyntheticPattern::UniformRandom, 8, 0.05);
        let config = sim_config(128, 10 + trial);

        let reference = Simulator::new(&topo, wl.clone(), config).run();

        let mut sim = Simulator::new(&topo, wl.clone(), config);
        let pause: u64 = pick.gen_range(1..1_400u64);
        let done = sim.run_until(pause);
        let bytes = sim.snapshot();
        let hash_before = sim.state_hash();

        let restored = Simulator::restore(&topo, wl, config, &bytes)
            .expect("snapshot taken by the engine restores cleanly");
        assert_eq!(
            restored.state_hash(),
            hash_before,
            "trial {trial}: state hash diverged across the round trip at cycle {pause}"
        );
        let resumed = restored.finish();
        assert_eq!(
            resumed.fingerprint(),
            reference.fingerprint(),
            "trial {trial}: resume from cycle {pause} (done={done:?}) \
             diverged from the uninterrupted run"
        );
    }
}

#[test]
fn scalar_sim_snapshot_after_completion_still_roundtrips() {
    // Snapshotting a finished run is legal: the restored simulator's
    // `finish` must return the same statistics without stepping further.
    let topo = MeshTopology::mesh(4);
    let wl = workload(SyntheticPattern::Transpose, 4, 0.08);
    let config = sim_config(256, 3);

    let mut sim = Simulator::new(&topo, wl.clone(), config);
    while sim.run_until(sim.cycle() + 500).is_none() {}
    let bytes = sim.snapshot();
    let reference = sim.finish();

    let restored = Simulator::restore(&topo, wl, config, &bytes).unwrap();
    assert_eq!(restored.finish().fingerprint(), reference.fingerprint());
}

#[test]
fn batch_sim_roundtrip_is_bit_identical_per_lane() {
    let mut pick = SmallRng::seed_from_u64(0x5eed_0002);
    let topo = MeshTopology::mesh(8);
    let replicas = |base_seed: u64| -> Vec<(Workload, SimConfig)> {
        (0..4)
            .map(|k| {
                (
                    workload(SyntheticPattern::Shuffle, 8, 0.02 + 0.01 * k as f64),
                    sim_config(64, base_seed + k),
                )
            })
            .collect()
    };
    for trial in 0..4u64 {
        let reference: Vec<u64> = BatchSimulator::new(&topo, replicas(20 + trial))
            .run()
            .iter()
            .map(|s| s.fingerprint())
            .collect();

        let mut batch = BatchSimulator::new(&topo, replicas(20 + trial));
        let pause: u64 = pick.gen_range(1..1_600u64);
        batch.run_until(pause);
        let bytes = batch.snapshot();
        let hash_before = batch.state_hash();

        let restored = BatchSimulator::restore(&topo, replicas(20 + trial), &bytes)
            .expect("batch snapshot restores cleanly");
        assert_eq!(
            restored.state_hash(),
            hash_before,
            "trial {trial}: batch state hash diverged at cycle {pause}"
        );
        let resumed: Vec<u64> = restored.run().iter().map(|s| s.fingerprint()).collect();
        assert_eq!(
            resumed, reference,
            "trial {trial}: batch resume from cycle {pause} diverged"
        );
    }
}

#[test]
fn solve_job_roundtrip_is_bit_identical_at_random_cuts() {
    let mut pick = SmallRng::seed_from_u64(0x5eed_0003);
    let objective = AllPairsObjective::paper();
    let cases = [
        (8usize, 4usize, InitialStrategy::DivideAndConquer, 1usize),
        (8, 3, InitialStrategy::Random, 1),
        (12, 6, InitialStrategy::DivideAndConquer, 3),
        (10, 5, InitialStrategy::Greedy, 2),
    ];
    for &(n, c, strategy, chains) in &cases {
        let params = SaParams::paper().with_moves(4_000).with_chains(chains);
        let seed = 77;
        let fp = objective.fingerprint();

        let mut reference = SolveJob::new(n, c, &objective, strategy, &params, seed, fp);
        reference.run_moves(&objective, usize::MAX);
        let reference = reference.outcome();

        let mut job = SolveJob::new(n, c, &objective, strategy, &params, seed, fp);
        let cut: u64 = pick.gen_range(1..4_000u64);
        let done = job.run_moves(&objective, cut as usize);
        let bytes = job.snapshot();
        let hash_before = job.state_hash();

        let mut restored = SolveJob::restore(&bytes).expect("job snapshot restores cleanly");
        assert_eq!(
            restored.state_hash(),
            hash_before,
            "P({n},{c}) x{chains}: state hash diverged at cut {cut}"
        );
        restored.run_moves(&objective, usize::MAX);
        let resumed = restored.outcome();

        assert_eq!(
            resumed.best, reference.best,
            "P({n},{c}) x{chains}: placements diverged after resume at {cut} (done={done})"
        );
        assert_eq!(
            resumed.best_objective.to_bits(),
            reference.best_objective.to_bits(),
            "P({n},{c}) x{chains}: objective bits diverged after resume at {cut}"
        );
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.accepted_moves, reference.accepted_moves);
    }
}

#[test]
fn reserialized_snapshot_is_byte_identical() {
    // snapshot → restore → snapshot must reproduce the original bytes:
    // serialization loses nothing the engines carry.
    let topo = MeshTopology::mesh(4);
    let wl = workload(SyntheticPattern::BitReverse, 4, 0.04);
    let config = sim_config(128, 9);
    let mut sim = Simulator::new(&topo, wl.clone(), config);
    sim.run_until(350);
    let bytes = sim.snapshot();
    let restored = Simulator::restore(&topo, wl, config, &bytes).unwrap();
    assert_eq!(
        restored.snapshot(),
        bytes,
        "simulator snapshot not lossless"
    );

    let objective = AllPairsObjective::paper();
    let mut job = SolveJob::new(
        8,
        4,
        &objective,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        5,
        objective.fingerprint(),
    );
    job.run_moves(&objective, 1_234);
    let bytes = job.snapshot();
    let restored = SolveJob::restore(&bytes).unwrap();
    assert_eq!(
        restored.snapshot(),
        bytes,
        "solve-job snapshot not lossless"
    );
}

#[test]
fn restore_refuses_mismatched_context() {
    // A snapshot taken under one workload/config must not restore into a
    // different one: every mismatch is a structured error, never a panic
    // or a silently wrong simulator.
    let topo = MeshTopology::mesh(4);
    let wl = workload(SyntheticPattern::UniformRandom, 4, 0.05);
    let config = sim_config(128, 2);
    let mut sim = Simulator::new(&topo, wl.clone(), config);
    sim.run_until(200);
    let bytes = sim.snapshot();

    let other_wl = workload(SyntheticPattern::Transpose, 4, 0.05);
    assert!(
        Simulator::restore(&topo, other_wl, config, &bytes).is_err(),
        "restore accepted a different workload"
    );
    let other_config = sim_config(128, 3);
    assert!(
        Simulator::restore(&topo, wl, other_config, &bytes).is_err(),
        "restore accepted a different seed"
    );
}
