//! Baseline topology builders: mesh, flattened butterfly, and the hybrid
//! flattened butterfly (HFB) the paper compares against (Fig. 4).

use crate::mesh::MeshTopology;
use crate::row::RowPlacement;

/// A plain mesh row of `n` routers (local links only) — the `C = 1` baseline.
pub fn mesh_row(n: usize) -> RowPlacement {
    RowPlacement::new(n)
}

/// A fully-connected flattened-butterfly row: every pair of routers on the
/// row is directly linked (Kim et al., MICRO 2007).
///
/// The maximum cross-section is `⌈n/2⌉·⌊n/2⌋ = n²/4` at the middle cut
/// (Eq. 4's `C_full`).
pub fn flattened_butterfly_row(n: usize) -> RowPlacement {
    let mut row = RowPlacement::new(n);
    for a in 0..n {
        for b in a + 2..n {
            row.add_link(a, b).expect("pairs within row are valid");
        }
    }
    row
}

/// The hybrid flattened butterfly (HFB) row (Fig. 4): the row is split into
/// two halves, each half fully connected, joined only by the pre-existing
/// local link at the seam.
///
/// For `n <= 4` the full flattened butterfly is returned — HFB exists to
/// scale the flattened butterfly *beyond* a 4×4 router network (§5.1), so the
/// 4×4 comparison point is the plain flattened butterfly.
pub fn hfb_row(n: usize) -> RowPlacement {
    if n <= 4 {
        return flattened_butterfly_row(n);
    }
    let half = n / 2;
    let mut row = RowPlacement::new(n);
    for a in 0..half {
        for b in a + 2..half {
            row.add_link(a, b).expect("pairs within half are valid");
        }
    }
    for a in half..n {
        for b in a + 2..n {
            row.add_link(a, b).expect("pairs within half are valid");
        }
    }
    row
}

/// The full 2D HFB mesh: the HFB row replicated across rows and columns, so
/// each quadrant is internally a 2D flattened butterfly and quadrants meet
/// over local links (Fig. 4).
pub fn hfb_mesh(n: usize) -> MeshTopology {
    MeshTopology::uniform(n, &hfb_row(n))
}

/// The link limit `C` consumed by a row placement — its maximum
/// cross-section. Fixed designs such as HFB occupy a single design point at
/// this `C` (Fig. 5 plots them as single points).
pub fn implied_link_limit(row: &RowPlacement) -> usize {
    row.max_cross_section()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattened_butterfly_is_fully_connected() {
        let row = flattened_butterfly_row(4);
        // All C(4,2) = 6 pairs linked: 3 local + 3 express.
        assert_eq!(row.express_count(), 3);
        assert!(row.has_express(0, 2));
        assert!(row.has_express(0, 3));
        assert!(row.has_express(1, 3));
        // Middle cut carries n²/4 = 4 links (Eq. 4).
        assert_eq!(row.cross_section(1), 4);
        assert_eq!(implied_link_limit(&row), 4);
    }

    #[test]
    fn flattened_butterfly_full_cross_section_matches_eq4() {
        for n in [4usize, 6, 8, 16] {
            let row = flattened_butterfly_row(n);
            assert_eq!(implied_link_limit(&row), (n / 2) * n.div_ceil(2));
        }
    }

    #[test]
    fn hfb_small_network_is_flattened_butterfly() {
        assert_eq!(hfb_row(4), flattened_butterfly_row(4));
    }

    #[test]
    fn hfb_row_8_structure() {
        let row = hfb_row(8);
        // Each half of 4 contributes 3 express links.
        assert_eq!(row.express_count(), 6);
        assert!(row.has_express(0, 2));
        assert!(row.has_express(1, 3));
        assert!(row.has_express(4, 6));
        assert!(row.has_express(4, 7));
        // Nothing crosses the seam except the local link.
        assert_eq!(row.cross_section(3), 1);
        // Max cross-section inside a half: 4 (paper: HFB on 8x8 sits at C=4).
        assert_eq!(implied_link_limit(&row), 4);
    }

    #[test]
    fn hfb_row_16_structure() {
        let row = hfb_row(16);
        // Halves of 8, fully connected: C(8,2) - 7 = 21 express links each.
        assert_eq!(row.express_count(), 42);
        assert_eq!(row.cross_section(7), 1); // seam
        assert_eq!(implied_link_limit(&row), 16); // 8²/4 inside a half
    }

    #[test]
    fn hfb_mesh_replicates_row() {
        let m = hfb_mesh(8);
        assert_eq!(m.side(), 8);
        assert_eq!(m.max_cross_section(), 4);
        for y in 0..8 {
            assert_eq!(m.row_placement(y), &hfb_row(8));
        }
        for x in 0..8 {
            assert_eq!(m.col_placement(x), &hfb_row(8));
        }
    }
}
