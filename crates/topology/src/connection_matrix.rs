//! The connection-matrix solution space (§4.4.2 of the paper).
//!
//! For the one-dimensional problem `P̂(n, C)` the paper defines a binary
//! matrix `M` of size `(n-2) × (C-1)`: one row of *connection points* per
//! express-link layer (one of the `C` layers is reserved for the implicit
//! local links). The connection point of layer `l` at interior router `r`
//! says whether the wire segments on both sides of router `r` in that layer
//! are joined into one longer link.
//!
//! Decoding a layer walks its connection points: maximal runs of connected
//! interior points delimit *spans* between boundary routers; every span of
//! length ≥ 2 becomes an express link, while unit spans are dropped (they
//! would merely duplicate the local link — this is why the paper's optimal
//! `P̂(8,4)` uses only 3 of the 4 allowed links at the edge cross-sections,
//! §5.4).
//!
//! Two properties make this encoding the right SA search space:
//!
//! 1. **Validity by construction** — every matrix decodes to a placement that
//!    contains all local links and respects every cross-section limit,
//!    because a layer contributes at most one wire to any cut.
//! 2. **Completeness** — every valid placement is the decoding of at least
//!    one matrix ([`ConnectionMatrix::encode`] exhibits one via greedy
//!    interval colouring), so single-bit flips keep the whole valid space
//!    probabilistically reachable.

use crate::error::TopologyError;
use crate::row::RowPlacement;

/// Binary connection matrix for `P̂(n, C)`: `(C-1)` layers × `(n-2)` interior
/// connection points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConnectionMatrix {
    n: usize,
    c_limit: usize,
    /// Row-major bits: `bits[layer * points + point]`, where `point` `p`
    /// refers to interior router `p + 1`.
    bits: Vec<bool>,
}

impl ConnectionMatrix {
    /// All-disconnected matrix for a row of `n` routers with link limit `C`
    /// (decodes to the plain mesh row).
    ///
    /// # Panics
    /// Panics if `n < 2` or `c_limit < 1`.
    pub fn new(n: usize, c_limit: usize) -> Self {
        assert!(n >= 2, "a row needs at least 2 routers");
        assert!(c_limit >= 1, "link limit C must be >= 1");
        let layers = c_limit - 1;
        let points = n.saturating_sub(2);
        ConnectionMatrix {
            n,
            c_limit,
            bits: vec![false; layers * points],
        }
    }

    /// Builds a matrix from explicit bits (row-major, `(C-1) × (n-2)`).
    pub fn from_bits(n: usize, c_limit: usize, bits: Vec<bool>) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::RowTooSmall { n });
        }
        if c_limit < 1 {
            return Err(TopologyError::InvalidLinkLimit { limit: c_limit });
        }
        let expected = (c_limit - 1) * n.saturating_sub(2);
        if bits.len() != expected {
            return Err(TopologyError::MismatchedRowLength {
                expected,
                got: bits.len(),
            });
        }
        Ok(ConnectionMatrix { n, c_limit, bits })
    }

    /// Number of routers on the row.
    pub fn routers(&self) -> usize {
        self.n
    }

    /// Link limit `C` this matrix was built for.
    pub fn link_limit(&self) -> usize {
        self.c_limit
    }

    /// Row length `n` the matrix encodes placements for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of express-link layers (`C - 1`).
    pub fn layers(&self) -> usize {
        self.c_limit - 1
    }

    /// Number of interior connection points per layer (`n - 2`).
    pub fn points(&self) -> usize {
        self.n.saturating_sub(2)
    }

    /// Total number of connection-point bits — the SA move space size.
    pub fn bit_count(&self) -> usize {
        self.bits.len()
    }

    /// Reads the connection point of `layer` at interior point `point`
    /// (interior router `point + 1`).
    pub fn get(&self, layer: usize, point: usize) -> bool {
        self.bits[self.index(layer, point)]
    }

    /// Sets the connection point of `layer` at `point`.
    pub fn set(&mut self, layer: usize, point: usize, connected: bool) {
        let idx = self.index(layer, point);
        self.bits[idx] = connected;
    }

    /// Flips one connection point — the paper's SA candidate move — and
    /// returns the new value.
    pub fn flip(&mut self, layer: usize, point: usize) -> bool {
        let idx = self.index(layer, point);
        self.bits[idx] = !self.bits[idx];
        self.bits[idx]
    }

    /// Flips the bit at a flat index in `0..bit_count()`.
    pub fn flip_flat(&mut self, index: usize) -> bool {
        assert!(index < self.bits.len(), "flat index out of range");
        self.bits[index] = !self.bits[index];
        self.bits[index]
    }

    fn index(&self, layer: usize, point: usize) -> usize {
        assert!(layer < self.layers(), "layer {layer} out of range");
        assert!(point < self.points(), "point {point} out of range");
        layer * self.points() + point
    }

    /// Decodes the matrix into the express-link placement it represents.
    ///
    /// The result always contains all local links (implicitly) and satisfies
    /// `max_cross_section() <= C`.
    pub fn decode(&self) -> RowPlacement {
        let mut row = RowPlacement::new(self.n);
        let points = self.points();
        for layer in 0..self.layers() {
            // Walk boundary routers: 0, every disconnected interior router,
            // and n-1. Consecutive boundaries delimit one span.
            let mut span_start = 0usize;
            for point in 0..points {
                let router = point + 1;
                if !self.bits[layer * points + point] {
                    if router - span_start >= 2 {
                        row.add_link(span_start, router)
                            .expect("decoded span is a valid express link");
                    }
                    span_start = router;
                }
            }
            if (self.n - 1) - span_start >= 2 {
                row.add_link(span_start, self.n - 1)
                    .expect("decoded span is a valid express link");
            }
        }
        row
    }

    /// Encodes a placement into a connection matrix with the given link
    /// limit, assigning express links to layers by greedy interval colouring.
    ///
    /// Returns `None` if the placement violates the cross-section limit `C`
    /// (more than `C - 1` express links over some cut), since no matrix of
    /// `C - 1` layers can represent it.
    pub fn encode(placement: &RowPlacement, c_limit: usize) -> Option<Self> {
        if c_limit < 1 || !placement.is_within_limit(c_limit) {
            return None;
        }
        let n = placement.len();
        let mut matrix = ConnectionMatrix::new(n, c_limit);
        if matrix.layers() == 0 {
            return if placement.express_count() == 0 {
                Some(matrix)
            } else {
                None
            };
        }
        // Greedy interval colouring: process links sorted by left endpoint
        // (RowPlacement iterates in sorted order); a link fits a layer iff it
        // starts at or after the layer's furthest right endpoint so far.
        // Interval graphs are perfect, so this needs exactly max-overlap
        // layers, which the cross-section check bounds by C - 1.
        let mut layer_end = vec![0usize; matrix.layers()];
        for link in placement.express_links() {
            let layer = (0..layer_end.len()).find(|&l| layer_end[l] <= link.a)?;
            layer_end[layer] = link.b;
            for router in link.a + 1..link.b {
                matrix.set(layer, router - 1, true);
            }
        }
        Some(matrix)
    }

    /// Iterates over the raw bits (row-major).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_decodes_to_mesh_row() {
        let m = ConnectionMatrix::new(8, 4);
        assert_eq!(m.layers(), 3);
        assert_eq!(m.points(), 6);
        assert_eq!(m.bit_count(), 18);
        assert_eq!(m.decode(), RowPlacement::new(8));
    }

    #[test]
    fn c_equal_one_has_no_layers() {
        let m = ConnectionMatrix::new(8, 1);
        assert_eq!(m.layers(), 0);
        assert_eq!(m.bit_count(), 0);
        assert_eq!(m.decode(), RowPlacement::new(8));
    }

    #[test]
    fn decode_paper_figure_2_top_layer() {
        // Fig. 2(a) top layer: connection point at router 3 (1-indexed)
        // connected -> express link routers 2..4; points at 5, 6, 7
        // connected -> express link routers 4..8. 0-indexed: points at
        // routers 2, 4, 5, 6 => interior point indices 1, 3, 4, 5.
        let mut m = ConnectionMatrix::new(8, 2);
        m.set(0, 1, true);
        m.set(0, 3, true);
        m.set(0, 4, true);
        m.set(0, 5, true);
        let decoded = m.decode();
        let expected = RowPlacement::with_links(8, [(1, 3), (3, 7)]).unwrap();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn unit_spans_are_dropped() {
        // Layer with all points disconnected: spans are all unit length,
        // so the layer contributes nothing.
        let m = ConnectionMatrix::new(8, 3);
        assert_eq!(m.decode().express_count(), 0);

        // A single connected point in the middle creates exactly one
        // length-2 link; the surrounding unit spans disappear.
        let mut m = ConnectionMatrix::new(8, 2);
        m.set(0, 2, true); // interior router 3 -> link (2, 4)
        let decoded = m.decode();
        assert_eq!(decoded.express_count(), 1);
        assert!(decoded.has_express(2, 4));
    }

    #[test]
    fn all_connected_layer_spans_whole_row() {
        let mut m = ConnectionMatrix::new(6, 2);
        for p in 0..m.points() {
            m.set(0, p, true);
        }
        let decoded = m.decode();
        assert_eq!(decoded.express_count(), 1);
        assert!(decoded.has_express(0, 5));
    }

    #[test]
    fn decode_always_within_limit() {
        // Exhaustive over every matrix for a small instance.
        let n = 6;
        let c = 3;
        let nbits = (c - 1) * (n - 2);
        for word in 0..(1usize << nbits) {
            let bits: Vec<bool> = (0..nbits).map(|i| word >> i & 1 == 1).collect();
            let m = ConnectionMatrix::from_bits(n, c, bits).unwrap();
            let row = m.decode();
            assert!(
                row.is_within_limit(c),
                "matrix {word:#b} decoded out of limit: {row:?}"
            );
        }
    }

    #[test]
    fn encode_round_trips() {
        let row =
            RowPlacement::with_links(8, [(1, 3), (3, 7), (0, 3), (3, 6), (0, 2), (4, 7)]).unwrap();
        let m = ConnectionMatrix::encode(&row, 4).expect("placement fits C = 4");
        assert_eq!(m.decode(), row);
    }

    #[test]
    fn encode_rejects_overfull_placements() {
        let row = RowPlacement::with_links(6, [(0, 2), (0, 3), (0, 4)]).unwrap();
        // Cut 1 has 4 links but C = 3 allows only 3.
        assert!(ConnectionMatrix::encode(&row, 3).is_none());
        assert!(ConnectionMatrix::encode(&row, 4).is_some());
    }

    #[test]
    fn encode_adjacent_links_share_a_layer() {
        // (0,2) and (2,4) touch at router 2 but do not overlap any cut, so
        // one layer suffices.
        let row = RowPlacement::with_links(5, [(0, 2), (2, 4)]).unwrap();
        let m = ConnectionMatrix::encode(&row, 2).expect("C = 2 is enough");
        assert_eq!(m.decode(), row);
    }

    #[test]
    fn flip_round_trips() {
        let mut m = ConnectionMatrix::new(8, 4);
        assert!(m.flip(1, 2));
        assert!(m.get(1, 2));
        assert!(!m.flip(1, 2));
        assert_eq!(m, ConnectionMatrix::new(8, 4));
    }

    #[test]
    fn from_bits_validates_dimensions() {
        assert!(ConnectionMatrix::from_bits(8, 4, vec![false; 18]).is_ok());
        assert!(matches!(
            ConnectionMatrix::from_bits(8, 4, vec![false; 17]),
            Err(TopologyError::MismatchedRowLength { .. })
        ));
        assert!(matches!(
            ConnectionMatrix::from_bits(8, 0, vec![]),
            Err(TopologyError::InvalidLinkLimit { .. })
        ));
    }
}
