//! Human-readable rendering of placements and connection matrices, in the
//! style of the paper's Fig. 2.

use crate::connection_matrix::ConnectionMatrix;
use crate::row::RowPlacement;
use std::fmt::Write as _;

/// Renders a row placement as ASCII art: one line per express link above a
/// router rail, e.g. for `P̂(8,4)`:
///
/// ```text
///   o-----o        (0,2)
///   o--------o     (0,3)
/// ```
pub fn render_row(row: &RowPlacement) -> String {
    let n = row.len();
    let mut out = String::new();
    for link in row.express_links() {
        let mut line = String::new();
        for r in 0..n {
            if r == link.a || r == link.b {
                line.push('o');
            } else if r > link.a && r < link.b {
                line.push('═');
            } else {
                line.push('·');
            }
            if r + 1 < n {
                let c = if r >= link.a && r < link.b {
                    '═'
                } else {
                    ' '
                };
                for _ in 0..3 {
                    line.push(c);
                }
            }
        }
        let _ = writeln!(out, "{line}   ({}, {})", link.a, link.b);
    }
    // Router rail with local links.
    let mut rail = String::new();
    for r in 0..n {
        let _ = write!(rail, "{}", r % 10);
        if r + 1 < n {
            rail.push_str("---");
        }
    }
    let _ = writeln!(out, "{rail}   local links");
    // Cross-section counts beneath each cut.
    let mut cuts = String::new();
    for (i, c) in row.cross_sections().into_iter().enumerate() {
        if i == 0 {
            cuts.push(' ');
        }
        let _ = write!(cuts, " {c:^2} ");
    }
    let _ = writeln!(out, "{cuts}  cross-section link counts");
    out
}

/// Renders a connection matrix as the paper's dot diagram: `●` for a
/// connected point, `○` for disconnected, one line per layer.
pub fn render_matrix(matrix: &ConnectionMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "connection matrix for P\u{302}({}, {}): {} layer(s) x {} point(s)",
        matrix.routers(),
        matrix.link_limit(),
        matrix.layers(),
        matrix.points()
    );
    for layer in 0..matrix.layers() {
        let mut line = String::from("  |");
        for point in 0..matrix.points() {
            line.push(if matrix.get(layer, point) {
                '●'
            } else {
                '○'
            });
            line.push('|');
        }
        let _ = writeln!(out, "{line}  layer {layer}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_row_mentions_every_link_and_cut() {
        let row = RowPlacement::with_links(8, [(1, 3), (3, 7)]).unwrap();
        let art = render_row(&row);
        assert!(art.contains("(1, 3)"));
        assert!(art.contains("(3, 7)"));
        assert!(art.contains("cross-section"));
        // 8 routers on the rail line.
        assert!(art.contains("0---1---2---3---4---5---6---7"));
    }

    #[test]
    fn render_matrix_shows_dots() {
        let mut m = ConnectionMatrix::new(8, 2);
        m.set(0, 1, true);
        let art = render_matrix(&m);
        assert!(art.contains('●'));
        assert!(art.contains('○'));
        assert!(art.contains("1 layer(s) x 6 point(s)"));
    }
}
