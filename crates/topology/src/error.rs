//! Error types for topology construction and validation.

use std::fmt;

/// Errors produced while constructing or validating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A row must contain at least two routers.
    RowTooSmall { n: usize },
    /// Link endpoints must be distinct routers inside the row.
    EndpointOutOfRange { a: usize, b: usize, n: usize },
    /// Express links must span at least two hops; `(i, i+1)` duplicates the
    /// always-present local link and buys no latency.
    NotExpress { a: usize, b: usize },
    /// A cross-section exceeded the link limit `C`.
    CrossSectionExceeded {
        cut: usize,
        count: usize,
        limit: usize,
    },
    /// The link limit `C` must be at least 1 (the local-link layer).
    InvalidLinkLimit { limit: usize },
    /// Mesh construction was given the wrong number of row/column placements.
    WrongPlacementCount {
        expected: usize,
        rows: usize,
        cols: usize,
    },
    /// Mesh rows/columns must all have length `n`.
    MismatchedRowLength { expected: usize, got: usize },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::RowTooSmall { n } => {
                write!(f, "row needs at least 2 routers, got {n}")
            }
            TopologyError::EndpointOutOfRange { a, b, n } => {
                write!(f, "link ({a}, {b}) out of range for row of {n} routers")
            }
            TopologyError::NotExpress { a, b } => {
                write!(
                    f,
                    "link ({a}, {b}) is not an express link (must span >= 2 hops)"
                )
            }
            TopologyError::CrossSectionExceeded { cut, count, limit } => {
                write!(
                    f,
                    "cross-section between routers {cut} and {} has {count} links, limit is {limit}",
                    cut + 1
                )
            }
            TopologyError::InvalidLinkLimit { limit } => {
                write!(f, "link limit C must be >= 1, got {limit}")
            }
            TopologyError::WrongPlacementCount {
                expected,
                rows,
                cols,
            } => {
                write!(
                    f,
                    "mesh of size {expected} needs {expected} row and {expected} column placements, got {rows} rows / {cols} cols"
                )
            }
            TopologyError::MismatchedRowLength { expected, got } => {
                write!(
                    f,
                    "placement length {got} does not match mesh size {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}
