//! Express-link topology representation for NoC-based many-core platforms.
//!
//! This crate implements the topology layer of the ICPP 2019 paper
//! *"Express Link Placement for NoC-Based Many-Core Platforms"*:
//!
//! * [`RowPlacement`] — a one-dimensional placement of bidirectional express
//!   links on a row (or column) of `n` routers. Local links between adjacent
//!   routers are always present; express links connect non-adjacent routers.
//! * [`ConnectionMatrix`] — the paper's `(n-2) × (C-1)` binary search-space
//!   encoding (§4.4.2). Every matrix decodes to a *valid* placement (all local
//!   links present, every cross-section within the link limit `C`), which is
//!   what makes the simulated-annealing candidate generator efficient.
//! * [`MeshTopology`] — a two-dimensional `n × n` mesh whose rows and columns
//!   each carry a [`RowPlacement`] (the 2D→1D lemma of §4.2 replicates one row
//!   solution across all rows and columns).
//! * [`builders`] — baseline topologies: plain mesh, flattened butterfly, and
//!   the hybrid flattened butterfly (HFB) of Fig. 4.
//!
//! # Example
//!
//! ```
//! use noc_topology::{RowPlacement, ConnectionMatrix};
//!
//! // A row of 8 routers with express links 2–4 and 4–8 (1-indexed in the
//! // paper; 0-indexed here), as in the paper's Fig. 2 top layer.
//! let mut row = RowPlacement::new(8);
//! row.add_link(1, 3).unwrap();
//! row.add_link(3, 7).unwrap();
//! assert_eq!(row.cross_section(0), 1); // only the local link 0–1
//! assert_eq!(row.cross_section(1), 2); // local + express 1–3
//! assert!(row.is_within_limit(4));
//!
//! // Encode into a connection matrix with link limit C = 4 and back.
//! let m = ConnectionMatrix::encode(&row, 4).unwrap();
//! assert_eq!(m.decode(), row);
//! ```

pub mod builders;
pub mod connection_matrix;
pub mod display;
pub mod error;
pub mod mesh;
pub mod row;

pub use builders::{flattened_butterfly_row, hfb_mesh, hfb_row, implied_link_limit, mesh_row};
pub use connection_matrix::ConnectionMatrix;
pub use error::TopologyError;
pub use mesh::{Coord, MeshTopology, Orientation};
pub use row::{Link, RowPlacement};
