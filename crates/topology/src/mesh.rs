//! Two-dimensional mesh topologies with per-row / per-column express links.
//!
//! The paper's 2D→1D lemma (§4.2) shows that, under dimension-order routing,
//! the optimal 2D placement is obtained by solving the one-dimensional
//! problem once and replicating the resulting [`RowPlacement`] across all `n`
//! rows and all `n` columns. [`MeshTopology`] stores one placement per row
//! and per column so that both the replicated (general-purpose) case and the
//! application-specific case (§5.6.4, distinct placements per row/column) are
//! representable.

use crate::error::TopologyError;
use crate::row::{Link, RowPlacement};

/// A router coordinate on the mesh: `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index (0-based, left to right).
    pub x: usize,
    /// Row index (0-based, top to bottom).
    pub y: usize,
}

/// Whether a physical link runs along a row (X dimension) or a column (Y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// A link within a row, traversed by the X phase of DOR.
    Horizontal,
    /// A link within a column, traversed by the Y phase of DOR.
    Vertical,
}

/// A physical bidirectional link on the 2D mesh, between routers `a` and `b`
/// (flat ids, `a < b`), of Manhattan length `length` unit hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshLink {
    /// Smaller flat router id.
    pub a: usize,
    /// Larger flat router id.
    pub b: usize,
    /// Manhattan length in unit hops (1 for local links).
    pub length: usize,
    /// Row or column link.
    pub orientation: Orientation,
}

/// An `n × n` mesh where every row and every column carries an express-link
/// placement. Routers are numbered row-major: `id = y * n + x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshTopology {
    n: usize,
    rows: Vec<RowPlacement>,
    cols: Vec<RowPlacement>,
}

impl MeshTopology {
    /// Builds a mesh replicating one row placement across all rows and all
    /// columns — the general-purpose construction of the paper's lemma.
    ///
    /// # Panics
    /// Panics if the placement length differs from `n`.
    pub fn uniform(n: usize, placement: &RowPlacement) -> Self {
        assert_eq!(placement.len(), n, "placement length must equal mesh size");
        MeshTopology {
            n,
            rows: vec![placement.clone(); n],
            cols: vec![placement.clone(); n],
        }
    }

    /// A plain `n × n` mesh (local links only).
    pub fn mesh(n: usize) -> Self {
        Self::uniform(n, &RowPlacement::new(n))
    }

    /// Builds a mesh from explicit per-row and per-column placements
    /// (application-specific designs use distinct placements, §5.6.4).
    pub fn from_placements(
        rows: Vec<RowPlacement>,
        cols: Vec<RowPlacement>,
    ) -> Result<Self, TopologyError> {
        let n = rows.len();
        if cols.len() != n || n < 2 {
            return Err(TopologyError::WrongPlacementCount {
                expected: n,
                rows: rows.len(),
                cols: cols.len(),
            });
        }
        for p in rows.iter().chain(cols.iter()) {
            if p.len() != n {
                return Err(TopologyError::MismatchedRowLength {
                    expected: n,
                    got: p.len(),
                });
            }
        }
        Ok(MeshTopology { n, rows, cols })
    }

    /// Mesh side length `n`.
    pub fn side(&self) -> usize {
        self.n
    }

    /// Total number of routers `N = n²`.
    pub fn routers(&self) -> usize {
        self.n * self.n
    }

    /// Flat router id for a coordinate.
    pub fn router_id(&self, coord: Coord) -> usize {
        debug_assert!(coord.x < self.n && coord.y < self.n);
        coord.y * self.n + coord.x
    }

    /// Coordinate of a flat router id.
    pub fn coord(&self, id: usize) -> Coord {
        debug_assert!(id < self.routers());
        Coord {
            x: id % self.n,
            y: id / self.n,
        }
    }

    /// The placement on row `y`.
    pub fn row_placement(&self, y: usize) -> &RowPlacement {
        &self.rows[y]
    }

    /// The placement on column `x`.
    pub fn col_placement(&self, x: usize) -> &RowPlacement {
        &self.cols[x]
    }

    /// Iterates over every physical link of the mesh (local + express, rows
    /// then columns) as flat-id [`MeshLink`]s.
    pub fn links(&self) -> impl Iterator<Item = MeshLink> + '_ {
        let horizontal = self.rows.iter().enumerate().flat_map(move |(y, row)| {
            row.all_links().map(move |Link { a, b }| MeshLink {
                a: y * self.n + a,
                b: y * self.n + b,
                length: b - a,
                orientation: Orientation::Horizontal,
            })
        });
        let vertical = self.cols.iter().enumerate().flat_map(move |(x, col)| {
            col.all_links().map(move |Link { a, b }| MeshLink {
                a: a * self.n + x,
                b: b * self.n + x,
                length: b - a,
                orientation: Orientation::Vertical,
            })
        });
        horizontal.chain(vertical)
    }

    /// Total number of physical links.
    pub fn link_count(&self) -> usize {
        self.rows
            .iter()
            .map(RowPlacement::link_count)
            .sum::<usize>()
            + self
                .cols
                .iter()
                .map(RowPlacement::link_count)
                .sum::<usize>()
    }

    /// Number of network ports of router `id` (row degree + column degree,
    /// excluding the local injection/ejection port). Feeds the crossbar power
    /// model (`P ∝ b·k²`, §4.6).
    pub fn degree(&self, id: usize) -> usize {
        let c = self.coord(id);
        self.rows[c.y].degree(c.x) + self.cols[c.x].degree(c.y)
    }

    /// Mean network degree over all routers — the paper's `k_e` (§4.6 notes
    /// `k_e = 3.5` per dimension for the optimal `P̂(8,4)`).
    pub fn mean_degree(&self) -> f64 {
        let total: usize = (0..self.routers()).map(|id| self.degree(id)).sum();
        total as f64 / self.routers() as f64
    }

    /// Maximum cross-section over every cut of every row and column.
    pub fn max_cross_section(&self) -> usize {
        self.rows
            .iter()
            .chain(self.cols.iter())
            .map(RowPlacement::max_cross_section)
            .max()
            .unwrap_or(1)
    }

    /// Validates every row and column against the link limit `C`.
    pub fn validate(&self, c_limit: usize) -> Result<(), TopologyError> {
        for p in self.rows.iter().chain(self.cols.iter()) {
            p.validate(c_limit)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_mesh_counts() {
        let m = MeshTopology::mesh(4);
        assert_eq!(m.routers(), 16);
        // 2 * n * (n-1) local links.
        assert_eq!(m.link_count(), 24);
        assert_eq!(m.max_cross_section(), 1);
        assert!(m.validate(1).is_ok());
        // Corner router: 1 row + 1 col neighbour.
        assert_eq!(m.degree(0), 2);
        // Centre-ish router: 2 + 2.
        assert_eq!(m.degree(m.router_id(Coord { x: 1, y: 1 })), 4);
    }

    #[test]
    fn router_id_round_trips() {
        let m = MeshTopology::mesh(8);
        for id in 0..m.routers() {
            assert_eq!(m.router_id(m.coord(id)), id);
        }
        // Paper Fig. 3: router below the top-left router is id 8 (0-indexed)
        // for an 8-wide mesh (the paper numbers it 9, 1-indexed).
        assert_eq!(m.router_id(Coord { x: 0, y: 1 }), 8);
    }

    #[test]
    fn uniform_replication_applies_to_rows_and_columns() {
        let row = RowPlacement::with_links(4, [(0, 2), (1, 3)]).unwrap();
        let m = MeshTopology::uniform(4, &row);
        // Cut 1 carries the local link plus both express links.
        assert_eq!(m.max_cross_section(), 3);
        // Each of 4 rows and 4 cols has 3 local + 2 express links.
        assert_eq!(m.link_count(), 8 * 5);
        // Horizontal express link on row 2: routers (2*4+0, 2*4+2).
        assert!(m.links().any(|l| l.a == 8
            && l.b == 10
            && l.length == 2
            && l.orientation == Orientation::Horizontal));
        // Vertical express link on column 1: routers (0*4+1, 2*4+1).
        assert!(m.links().any(|l| l.a == 1
            && l.b == 9
            && l.length == 2
            && l.orientation == Orientation::Vertical));
    }

    #[test]
    fn degree_combines_row_and_column() {
        let row = RowPlacement::with_links(4, [(0, 2)]).unwrap();
        let m = MeshTopology::uniform(4, &row);
        // Router (0,0): row degree 2 (local + express), col degree 2.
        assert_eq!(m.degree(0), 4);
        // Router (2,2): row degree 3, col degree 3.
        assert_eq!(m.degree(m.router_id(Coord { x: 2, y: 2 })), 6);
    }

    #[test]
    fn from_placements_validates_shape() {
        let p4 = RowPlacement::new(4);
        let p5 = RowPlacement::new(5);
        assert!(MeshTopology::from_placements(vec![p4.clone(); 4], vec![p4.clone(); 4]).is_ok());
        assert!(matches!(
            MeshTopology::from_placements(vec![p4.clone(); 4], vec![p4.clone(); 3]),
            Err(TopologyError::WrongPlacementCount { .. })
        ));
        assert!(matches!(
            MeshTopology::from_placements(vec![p4.clone(); 4], vec![p5; 4]),
            Err(TopologyError::MismatchedRowLength { .. })
        ));
    }

    #[test]
    fn link_count_matches_iterator() {
        let row = RowPlacement::with_links(8, [(0, 3), (3, 7)]).unwrap();
        let m = MeshTopology::uniform(8, &row);
        assert_eq!(m.link_count(), m.links().count());
    }
}
