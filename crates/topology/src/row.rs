//! One-dimensional express-link placements.
//!
//! A [`RowPlacement`] describes the links on a single row (or column) of `n`
//! routers, labelled `0..n` left to right. Local links between adjacent
//! routers are *implicit and always present*; only express links (spanning at
//! least two hops) are stored. This matches the paper's solution space, where
//! "a valid combination must contain all the local links between adjacent
//! routers" (§4.3).

use crate::error::TopologyError;
use std::collections::BTreeSet;

/// A bidirectional link between routers `a < b` on one row.
///
/// `span() == 1` denotes a local link; express links have `span() >= 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Left endpoint (smaller router index).
    pub a: usize,
    /// Right endpoint (larger router index).
    pub b: usize,
}

impl Link {
    /// Creates a link, normalising endpoint order.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert!(a != b, "a link must connect two distinct routers");
        Link {
            a: a.min(b),
            b: a.max(b),
        }
    }

    /// Manhattan length of the link in unit hops.
    pub fn span(&self) -> usize {
        self.b - self.a
    }

    /// Whether the link is an express link (spans at least two hops).
    pub fn is_express(&self) -> bool {
        self.span() >= 2
    }

    /// Whether the link crosses the cut between routers `cut` and `cut + 1`.
    pub fn crosses(&self, cut: usize) -> bool {
        self.a <= cut && cut < self.b
    }
}

/// Express-link placement on a row of `n` routers.
///
/// Invariants maintained by construction:
/// * every stored link has both endpoints in `0..n`,
/// * every stored link spans at least two hops (local links are implicit),
/// * links are deduplicated (a placement is a *set* of express links; parallel
///   duplicates would consume cross-section budget without reducing latency).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowPlacement {
    n: usize,
    express: BTreeSet<Link>,
}

impl RowPlacement {
    /// A plain mesh row: `n` routers, local links only.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a row needs at least 2 routers");
        RowPlacement {
            n,
            express: BTreeSet::new(),
        }
    }

    /// Builds a placement from an iterator of express-link endpoint pairs.
    pub fn with_links<I>(n: usize, links: I) -> Result<Self, TopologyError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        if n < 2 {
            return Err(TopologyError::RowTooSmall { n });
        }
        let mut row = RowPlacement::new(n);
        for (a, b) in links {
            row.add_link(a, b)?;
        }
        Ok(row)
    }

    /// Number of routers on the row.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the row holds no routers. Always false for constructed rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds an express link between routers `a` and `b` (order-insensitive).
    ///
    /// Adding a link that is already present is a no-op (returns `Ok`).
    pub fn add_link(&mut self, a: usize, b: usize) -> Result<(), TopologyError> {
        if a >= self.n || b >= self.n || a == b {
            return Err(TopologyError::EndpointOutOfRange { a, b, n: self.n });
        }
        let link = Link::new(a, b);
        if !link.is_express() {
            return Err(TopologyError::NotExpress { a, b });
        }
        self.express.insert(link);
        Ok(())
    }

    /// Removes the express link between `a` and `b`; returns whether it existed.
    pub fn remove_link(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        self.express.remove(&Link::new(a, b))
    }

    /// Whether an express link between `a` and `b` is present.
    pub fn has_express(&self, a: usize, b: usize) -> bool {
        a != b && self.express.contains(&Link::new(a, b))
    }

    /// Iterates over express links only, in sorted order.
    pub fn express_links(&self) -> impl Iterator<Item = Link> + '_ {
        self.express.iter().copied()
    }

    /// Number of express links.
    pub fn express_count(&self) -> usize {
        self.express.len()
    }

    /// Iterates over *all* links: the `n - 1` implicit local links followed by
    /// the express links.
    pub fn all_links(&self) -> impl Iterator<Item = Link> + '_ {
        (0..self.n - 1)
            .map(|i| Link { a: i, b: i + 1 })
            .chain(self.express.iter().copied())
    }

    /// Total link count (local + express).
    pub fn link_count(&self) -> usize {
        (self.n - 1) + self.express.len()
    }

    /// Number of links crossing the cut between routers `cut` and `cut + 1`
    /// (including the local link).
    ///
    /// # Panics
    /// Panics if `cut >= n - 1`.
    pub fn cross_section(&self, cut: usize) -> usize {
        assert!(cut + 1 < self.n, "cut {cut} out of range");
        1 + self.express.iter().filter(|link| link.crosses(cut)).count()
    }

    /// Cross-section counts at every cut, as a vector of length `n - 1`.
    ///
    /// Computed in `O(n + e)` with a difference array rather than `O(n·e)`.
    pub fn cross_sections(&self) -> Vec<usize> {
        let mut diff = vec![0isize; self.n];
        for link in &self.express {
            diff[link.a] += 1;
            diff[link.b] -= 1;
        }
        let mut out = Vec::with_capacity(self.n - 1);
        let mut running = 1isize; // the local-link layer
        for &d in diff.iter().take(self.n - 1) {
            running += d;
            out.push(running as usize);
        }
        out
    }

    /// Maximum cross-section over all cuts.
    pub fn max_cross_section(&self) -> usize {
        self.cross_sections().into_iter().max().unwrap_or(1)
    }

    /// Whether every cross-section is within the link limit `C` (Eq. 3).
    pub fn is_within_limit(&self, c_limit: usize) -> bool {
        c_limit >= 1 && self.max_cross_section() <= c_limit
    }

    /// Validates the placement against a link limit, returning the first
    /// violated cut if any.
    pub fn validate(&self, c_limit: usize) -> Result<(), TopologyError> {
        if c_limit < 1 {
            return Err(TopologyError::InvalidLinkLimit { limit: c_limit });
        }
        for (cut, count) in self.cross_sections().into_iter().enumerate() {
            if count > c_limit {
                return Err(TopologyError::CrossSectionExceeded {
                    cut,
                    count,
                    limit: c_limit,
                });
            }
        }
        Ok(())
    }

    /// Degree of router `r`: the number of row links incident to it
    /// (local + express). Used by the power model for crossbar port counts.
    pub fn degree(&self, r: usize) -> usize {
        assert!(r < self.n);
        let local = usize::from(r > 0) + usize::from(r + 1 < self.n);
        local
            + self
                .express
                .iter()
                .filter(|link| link.a == r || link.b == r)
                .count()
    }

    /// The mirror image of this placement (router `i` ↦ `n - 1 - i`).
    ///
    /// Latency objectives over all pairs are mirror-symmetric, so mirroring is
    /// used to canonicalise solutions when deduplicating search states.
    pub fn mirrored(&self) -> Self {
        let n = self.n;
        let express = self
            .express
            .iter()
            .map(|link| Link::new(n - 1 - link.b, n - 1 - link.a))
            .collect();
        RowPlacement { n, express }
    }

    /// Canonical representative of `{self, self.mirrored()}` — the
    /// lexicographically smaller link set. Two placements with the same
    /// canonical form have identical all-pairs latency.
    pub fn canonical(&self) -> Self {
        let mirror = self.mirrored();
        if mirror.express < self.express {
            mirror
        } else {
            self.clone()
        }
    }

    /// Extracts a sub-row over routers `lo..hi` (half-open), keeping express
    /// links fully contained in the range and relabelling routers to `0..`.
    pub fn slice(&self, lo: usize, hi: usize) -> Self {
        assert!(lo < hi && hi <= self.n && hi - lo >= 2);
        let express = self
            .express
            .iter()
            .filter(|link| link.a >= lo && link.b < hi)
            .map(|link| Link::new(link.a - lo, link.b - lo))
            .collect();
        RowPlacement {
            n: hi - lo,
            express,
        }
    }

    /// Embeds another placement's links into this row at an offset: link
    /// `(a, b)` of `other` becomes `(a + offset, b + offset)`.
    pub fn embed(&mut self, other: &RowPlacement, offset: usize) -> Result<(), TopologyError> {
        for link in other.express_links() {
            self.add_link(link.a + offset, link.b + offset)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_row_has_only_local_links() {
        let row = RowPlacement::new(8);
        assert_eq!(row.len(), 8);
        assert_eq!(row.express_count(), 0);
        assert_eq!(row.link_count(), 7);
        assert_eq!(row.cross_sections(), vec![1; 7]);
        assert_eq!(row.max_cross_section(), 1);
        assert!(row.is_within_limit(1));
    }

    #[test]
    fn add_and_remove_express_links() {
        let mut row = RowPlacement::new(8);
        row.add_link(1, 3).unwrap();
        row.add_link(7, 3).unwrap(); // order-insensitive
        assert!(row.has_express(3, 1));
        assert!(row.has_express(3, 7));
        assert_eq!(row.express_count(), 2);
        assert!(row.remove_link(3, 1));
        assert!(!row.remove_link(3, 1));
        assert_eq!(row.express_count(), 1);
    }

    #[test]
    fn rejects_invalid_links() {
        let mut row = RowPlacement::new(4);
        assert_eq!(
            row.add_link(0, 1),
            Err(TopologyError::NotExpress { a: 0, b: 1 })
        );
        assert_eq!(
            row.add_link(0, 4),
            Err(TopologyError::EndpointOutOfRange { a: 0, b: 4, n: 4 })
        );
        assert_eq!(
            row.add_link(2, 2),
            Err(TopologyError::EndpointOutOfRange { a: 2, b: 2, n: 4 })
        );
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut row = RowPlacement::new(6);
        row.add_link(0, 3).unwrap();
        row.add_link(3, 0).unwrap();
        assert_eq!(row.express_count(), 1);
    }

    #[test]
    fn cross_sections_count_spanning_links() {
        // Paper Fig. 2(b): links 2–4, 4–8, 1–4, 4–7, 1–3, 5–8 (1-indexed)
        // = (1,3), (3,7), (0,3), (3,6), (0,2), (4,7) 0-indexed.
        let row =
            RowPlacement::with_links(8, [(1, 3), (3, 7), (0, 3), (3, 6), (0, 2), (4, 7)]).unwrap();
        // Cut 0 (between routers 0 and 1): local + (0,3) + (0,2) = 3.
        assert_eq!(row.cross_section(0), 3);
        // All cuts within limit 4.
        assert!(row.is_within_limit(4));
        assert!(!row.is_within_limit(3));
        let sections = row.cross_sections();
        assert_eq!(sections.len(), 7);
        assert_eq!(sections[0], 3);
        // Difference-array and naive counting agree everywhere.
        for (cut, &section) in sections.iter().enumerate() {
            assert_eq!(section, row.cross_section(cut));
        }
    }

    #[test]
    fn validate_reports_first_violation() {
        let row = RowPlacement::with_links(6, [(0, 2), (0, 3), (0, 4)]).unwrap();
        // Cut 0 already carries local + three express links = 4.
        assert_eq!(
            row.validate(3),
            Err(TopologyError::CrossSectionExceeded {
                cut: 0,
                count: 4,
                limit: 3
            })
        );
        assert!(row.validate(4).is_ok());
        assert_eq!(
            row.validate(0),
            Err(TopologyError::InvalidLinkLimit { limit: 0 })
        );
    }

    #[test]
    fn degree_counts_local_and_express() {
        let row = RowPlacement::with_links(8, [(0, 2), (2, 5), (2, 7)]).unwrap();
        assert_eq!(row.degree(0), 2); // local 0-1 + express 0-2
        assert_eq!(row.degree(2), 5); // locals 1-2, 2-3 + three express
        assert_eq!(row.degree(7), 2); // local 6-7 + express 2-7
        assert_eq!(row.degree(4), 2); // locals only
    }

    #[test]
    fn mirror_is_involutive_and_preserves_sections() {
        let row = RowPlacement::with_links(8, [(0, 2), (3, 7), (1, 4)]).unwrap();
        let mirror = row.mirrored();
        assert_eq!(mirror.mirrored(), row);
        let mut fwd = row.cross_sections();
        let mut rev = mirror.cross_sections();
        rev.reverse();
        fwd.iter_mut().for_each(|_| {});
        assert_eq!(fwd, rev);
    }

    #[test]
    fn canonical_identifies_mirror_pairs() {
        let row = RowPlacement::with_links(8, [(0, 2)]).unwrap();
        let mirror = row.mirrored();
        assert_eq!(row.canonical(), mirror.canonical());
    }

    #[test]
    fn slice_and_embed_roundtrip() {
        let row = RowPlacement::with_links(8, [(0, 2), (4, 6), (5, 7), (2, 6)]).unwrap();
        let right = row.slice(4, 8);
        assert_eq!(right.len(), 4);
        let expected = RowPlacement::with_links(4, [(0, 2), (1, 3)]).unwrap();
        assert_eq!(right, expected);

        let mut rebuilt = RowPlacement::new(8);
        rebuilt.embed(&right, 4).unwrap();
        assert!(rebuilt.has_express(4, 6));
        assert!(rebuilt.has_express(5, 7));
        assert_eq!(rebuilt.express_count(), 2);
    }

    #[test]
    fn all_links_lists_local_then_express() {
        let row = RowPlacement::with_links(4, [(0, 2)]).unwrap();
        let links: Vec<Link> = row.all_links().collect();
        assert_eq!(
            links,
            vec![
                Link { a: 0, b: 1 },
                Link { a: 1, b: 2 },
                Link { a: 2, b: 3 },
                Link { a: 0, b: 2 },
            ]
        );
    }
}
