//! Property-based tests for the topology layer: the connection matrix must
//! always decode to a valid placement, encoding must round-trip, and
//! structural accounting must be self-consistent.

use noc_topology::{ConnectionMatrix, MeshTopology, RowPlacement};
use proptest::prelude::*;

/// Strategy: a row size and link limit of practical scale.
fn dims() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=16).prop_flat_map(|n| {
        let c_max = ((n / 2) * n.div_ceil(2)).max(1);
        (Just(n), 1usize..=c_max.min(16))
    })
}

/// Strategy: a random connection matrix for the given dims.
fn matrix() -> impl Strategy<Value = ConnectionMatrix> {
    dims().prop_flat_map(|(n, c)| {
        let nbits = (c - 1) * n.saturating_sub(2);
        proptest::collection::vec(any::<bool>(), nbits)
            .prop_map(move |bits| ConnectionMatrix::from_bits(n, c, bits).unwrap())
    })
}

/// Strategy: a random *valid* placement, via decoding a random matrix.
fn placement() -> impl Strategy<Value = (RowPlacement, usize)> {
    matrix().prop_map(|m| (m.decode(), m.link_limit()))
}

proptest! {
    /// Every matrix decodes within its link limit — the core validity
    /// guarantee of the paper's §4.4.2 search space.
    #[test]
    fn decode_is_always_valid((row, c) in placement()) {
        prop_assert!(row.validate(c).is_ok());
    }

    /// Decoded placements never contain unit-span "express" links.
    #[test]
    fn decode_has_no_unit_links(m in matrix()) {
        let row = m.decode();
        for link in row.express_links() {
            prop_assert!(link.span() >= 2);
        }
    }

    /// Encode(decode(M)) reproduces the same placement (the matrix itself
    /// may differ — layer assignment is not unique).
    #[test]
    fn encode_round_trips((row, c) in placement()) {
        let encoded = ConnectionMatrix::encode(&row, c);
        prop_assert!(encoded.is_some(), "valid placements must be encodable");
        prop_assert_eq!(encoded.unwrap().decode(), row);
    }

    /// Flipping any bit twice restores the matrix exactly.
    #[test]
    fn double_flip_is_identity(m in matrix(), idx in any::<proptest::sample::Index>()) {
        if m.bit_count() == 0 {
            return Ok(());
        }
        let i = idx.index(m.bit_count());
        let mut flipped = m.clone();
        flipped.flip_flat(i);
        flipped.flip_flat(i);
        prop_assert_eq!(flipped, m);
    }

    /// A single bit flip still decodes to a valid placement (SA moves stay
    /// inside the feasible region by construction).
    #[test]
    fn single_flip_stays_valid(m in matrix(), idx in any::<proptest::sample::Index>()) {
        if m.bit_count() == 0 {
            return Ok(());
        }
        let mut flipped = m.clone();
        flipped.flip_flat(idx.index(m.bit_count()));
        prop_assert!(flipped.decode().validate(m.link_limit()).is_ok());
    }

    /// Cross-section accounting: difference-array vector matches per-cut
    /// counting, and the sum over cuts equals the total wire length.
    #[test]
    fn cross_sections_consistent((row, _) in placement()) {
        let sections = row.cross_sections();
        let mut expected_total = row.len() - 1; // local links, length 1 each
        for link in row.express_links() {
            expected_total += link.span();
        }
        prop_assert_eq!(sections.iter().sum::<usize>(), expected_total);
        for (cut, &count) in sections.iter().enumerate() {
            prop_assert_eq!(count, row.cross_section(cut));
        }
    }

    /// Mirroring preserves cross-sections (reversed) and the express count.
    #[test]
    fn mirror_preserves_structure((row, c) in placement()) {
        let mirror = row.mirrored();
        prop_assert_eq!(mirror.express_count(), row.express_count());
        prop_assert!(mirror.validate(c).is_ok());
        let mut rev = mirror.cross_sections();
        rev.reverse();
        prop_assert_eq!(rev, row.cross_sections());
    }

    /// Uniform 2D replication: the mesh link count and max cross-section
    /// follow directly from the row placement.
    #[test]
    fn uniform_mesh_structure((row, c) in placement()) {
        let n = row.len();
        let mesh = MeshTopology::uniform(n, &row);
        prop_assert_eq!(mesh.link_count(), 2 * n * row.link_count());
        prop_assert_eq!(mesh.max_cross_section(), row.max_cross_section());
        prop_assert!(mesh.validate(c).is_ok());
        // Degrees: every router's degree is row degree + column degree.
        for id in 0..mesh.routers() {
            let coord = mesh.coord(id);
            prop_assert_eq!(mesh.degree(id), row.degree(coord.x) + row.degree(coord.y));
        }
    }
}
