//! Property-based tests for the topology layer: the connection matrix must
//! always decode to a valid placement, encoding must round-trip, and
//! structural accounting must be self-consistent.
//!
//! Cases are generated with the in-repo deterministic PRNG (`noc-rng`)
//! instead of proptest, so the suite runs in hermetic offline builds; every
//! case that fails prints its `(n, c, case)` triple for replay.

use noc_rng::rngs::SmallRng;
use noc_rng::{Rng, SeedableRng};
use noc_topology::{ConnectionMatrix, MeshTopology, RowPlacement};

const CASES: u64 = 64;

/// Draws a row size and link limit of practical scale.
fn dims(rng: &mut SmallRng) -> (usize, usize) {
    let n = rng.gen_range(2usize..17);
    let c_max = ((n / 2) * n.div_ceil(2)).clamp(1, 16);
    (n, rng.gen_range(1usize..c_max + 1))
}

/// Draws a random connection matrix for random dims.
fn matrix(rng: &mut SmallRng) -> ConnectionMatrix {
    let (n, c) = dims(rng);
    let nbits = (c - 1) * n.saturating_sub(2);
    let bits: Vec<bool> = (0..nbits).map(|_| rng.gen::<bool>()).collect();
    ConnectionMatrix::from_bits(n, c, bits).unwrap()
}

/// Draws a random *valid* placement, via decoding a random matrix.
fn placement(rng: &mut SmallRng) -> (RowPlacement, usize) {
    let m = matrix(rng);
    (m.decode(), m.link_limit())
}

/// Runs `body` over `CASES` deterministic seeds.
fn for_cases(test_salt: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(test_salt ^ (case * 0x9E37_79B9));
        body(&mut rng);
    }
}

/// Every matrix decodes within its link limit — the core validity
/// guarantee of the paper's §4.4.2 search space.
#[test]
fn decode_is_always_valid() {
    for_cases(0x10, |rng| {
        let (row, c) = placement(rng);
        assert!(row.validate(c).is_ok(), "n={} c={c}", row.len());
    });
}

/// Decoded placements never contain unit-span "express" links.
#[test]
fn decode_has_no_unit_links() {
    for_cases(0x20, |rng| {
        let row = matrix(rng).decode();
        for link in row.express_links() {
            assert!(link.span() >= 2, "unit link in {row:?}");
        }
    });
}

/// Encode(decode(M)) reproduces the same placement (the matrix itself
/// may differ — layer assignment is not unique).
#[test]
fn encode_round_trips() {
    for_cases(0x30, |rng| {
        let (row, c) = placement(rng);
        let encoded = ConnectionMatrix::encode(&row, c);
        assert!(encoded.is_some(), "valid placements must be encodable");
        assert_eq!(encoded.unwrap().decode(), row);
    });
}

/// Flipping any bit twice restores the matrix exactly.
#[test]
fn double_flip_is_identity() {
    for_cases(0x40, |rng| {
        let m = matrix(rng);
        if m.bit_count() == 0 {
            return;
        }
        let i = rng.gen_range(0..m.bit_count());
        let mut flipped = m.clone();
        flipped.flip_flat(i);
        flipped.flip_flat(i);
        assert_eq!(flipped, m);
    });
}

/// A single bit flip still decodes to a valid placement (SA moves stay
/// inside the feasible region by construction).
#[test]
fn single_flip_stays_valid() {
    for_cases(0x50, |rng| {
        let m = matrix(rng);
        if m.bit_count() == 0 {
            return;
        }
        let mut flipped = m.clone();
        flipped.flip_flat(rng.gen_range(0..m.bit_count()));
        assert!(flipped.decode().validate(m.link_limit()).is_ok());
    });
}

/// Cross-section accounting: difference-array vector matches per-cut
/// counting, and the sum over cuts equals the total wire length.
#[test]
fn cross_sections_consistent() {
    for_cases(0x60, |rng| {
        let (row, _) = placement(rng);
        let sections = row.cross_sections();
        let mut expected_total = row.len() - 1; // local links, length 1 each
        for link in row.express_links() {
            expected_total += link.span();
        }
        assert_eq!(sections.iter().sum::<usize>(), expected_total);
        for (cut, &count) in sections.iter().enumerate() {
            assert_eq!(count, row.cross_section(cut));
        }
    });
}

/// Mirroring preserves cross-sections (reversed) and the express count.
#[test]
fn mirror_preserves_structure() {
    for_cases(0x70, |rng| {
        let (row, c) = placement(rng);
        let mirror = row.mirrored();
        assert_eq!(mirror.express_count(), row.express_count());
        assert!(mirror.validate(c).is_ok());
        let mut rev = mirror.cross_sections();
        rev.reverse();
        assert_eq!(rev, row.cross_sections());
    });
}

/// Uniform 2D replication: the mesh link count and max cross-section
/// follow directly from the row placement.
#[test]
fn uniform_mesh_structure() {
    for_cases(0x80, |rng| {
        let (row, c) = placement(rng);
        let n = row.len();
        let mesh = MeshTopology::uniform(n, &row);
        assert_eq!(mesh.link_count(), 2 * n * row.link_count());
        assert_eq!(mesh.max_cross_section(), row.max_cross_section());
        assert!(mesh.validate(c).is_ok());
        // Degrees: every router's degree is row degree + column degree.
        for id in 0..mesh.routers() {
            let coord = mesh.coord(id);
            assert_eq!(mesh.degree(id), row.degree(coord.x) + row.degree(coord.y));
        }
    });
}
