//! Trace events: the unit stored in the ring buffer and exported as NDJSON.

use noc_json::Value;

/// A single typed field value attached to an [`Event`].
///
/// The variants cover everything the instrumented layers emit; keeping the
/// set closed lets the export path stay allocation-light and lets callers
/// build field vectors without going through `noc_json::Value` on the hot
/// side.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, indices, durations in ns/us).
    U64(u64),
    /// Signed integer (gauge levels, deltas).
    I64(i64),
    /// Floating point (temperatures, rates, utilizations).
    F64(f64),
    /// Short owned string (labels chosen at emit time).
    Str(String),
}

impl FieldValue {
    /// Converts the field into a JSON value.
    pub fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Int(*v as i128),
            FieldValue::I64(v) => Value::Int(*v as i128),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One telemetry event: a kind ("span", "series", "point"), a static name,
/// a monotonic timestamp relative to sink installation, and a small set of
/// typed fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number assigned by the ring buffer (total order of
    /// emission, survives wraparound).
    pub seq: u64,
    /// Nanoseconds since the sink was installed (monotonic clock).
    pub nanos: u64,
    /// Event class: `"span"`, `"series"`, or `"point"`.
    pub kind: &'static str,
    /// Event name, e.g. `"sa.epoch"` or `"sim.link"`.
    pub name: &'static str,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Builds an event with `seq`/`nanos` zeroed; the ring buffer stamps
    /// both when the event is recorded.
    pub fn new(
        kind: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        Event {
            seq: 0,
            nanos: 0,
            kind,
            name,
            fields,
        }
    }

    /// Converts the event to a JSON object (one NDJSON line when compact).
    pub fn to_json(&self) -> Value {
        let mut obj: Vec<(String, Value)> = Vec::with_capacity(4 + self.fields.len());
        obj.push(("seq".to_string(), Value::Int(self.seq as i128)));
        obj.push(("nanos".to_string(), Value::Int(self.nanos as i128)));
        obj.push(("kind".to_string(), Value::Str(self.kind.to_string())));
        obj.push(("name".to_string(), Value::Str(self.name.to_string())));
        for (key, value) in &self.fields {
            obj.push((key.to_string(), value.to_json()));
        }
        Value::Obj(obj)
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Renders a slice of events as NDJSON: one compact JSON object per line,
/// terminated by `\n`, parseable line-by-line with `noc_json::parse`.
pub fn to_ndjson(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json().compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_through_json() {
        let mut ev = Event::new(
            "series",
            "sa.epoch",
            vec![
                ("epoch", FieldValue::U64(3)),
                ("temperature", FieldValue::F64(1.5)),
                ("label", FieldValue::from("chain")),
            ],
        );
        ev.seq = 7;
        ev.nanos = 99;
        let line = to_ndjson(&[ev]);
        let parsed = noc_json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("sa.epoch"));
        assert_eq!(parsed.get("epoch").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("temperature").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("chain"));
    }
}
