//! `noc-trace`: zero-overhead-when-off telemetry for the NoC toolchain.
//!
//! One global [`TraceSink`] holds a lock-free metric [`Registry`]
//! (counters, gauges, log2 histograms), a fixed-capacity ring-buffer
//! event log ([`EventRing`]), and a monotonic-clock origin for
//! timestamps. Instrumented code guards every emission behind
//! [`enabled()`] — a single relaxed atomic load — so with tracing off
//! there is no allocation, no formatting, and no clock read anywhere on
//! the hot paths. The sim golden fingerprints are bit-identical with
//! tracing on or off because telemetry only *reads* simulation state.
//!
//! Layers instrumented on top of this crate:
//!
//! - **placement** — `sa.epoch` convergence series (temperature,
//!   acceptance rate, best/current objective per cooldown epoch),
//!   `sa.chain` chain→seed mapping, and `sa.move.*` evaluator timing
//!   histograms;
//! - **sim** — `sim.link` per-link flit counts/utilization and
//!   `sim.router` crossbar utilization + buffer-occupancy averages;
//! - **service** — `request.*` spans around parse → cache → execute →
//!   respond, plus `"trace"` / `"prometheus"` request kinds.
//!
//! ```
//! noc_trace::enable_with_capacity(64);
//! {
//!     let _outer = noc_trace::span("outer");
//!     noc_trace::emit(
//!         "series",
//!         "demo.metric",
//!         vec![("value", noc_trace::FieldValue::U64(42))],
//!     );
//! }
//! let events = noc_trace::drain_events();
//! assert_eq!(events.len(), 2); // the series point and the span
//! assert!(noc_trace::to_ndjson(&events).lines().count() == 2);
//! ```

#![warn(missing_docs)]

mod event;
mod metric;
mod registry;
mod ring;
mod span;

pub use event::{to_ndjson, Event, FieldValue};
pub use metric::{Counter, Gauge, Log2Histogram};
pub use registry::Registry;
pub use ring::EventRing;
pub use span::{span, span_labeled, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default ring-buffer capacity installed by [`enable()`].
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The global telemetry hub: event ring + metric registry + clock origin.
#[derive(Debug)]
pub struct TraceSink {
    ring: EventRing,
    registry: Registry,
    origin: Instant,
}

impl TraceSink {
    fn new(capacity: usize) -> Self {
        TraceSink {
            ring: EventRing::new(capacity),
            registry: Registry::new(),
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the sink was installed.
    pub fn nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Stamps the event's timestamp and records it in the ring.
    pub fn emit(&self, mut event: Event) {
        event.nanos = self.nanos();
        self.ring.record(event);
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<TraceSink> = OnceLock::new();

/// The hot-path guard: true when tracing is globally enabled. A single
/// relaxed atomic load — instrumented code checks this before doing any
/// work (allocation, formatting, clock reads).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing with [`DEFAULT_CAPACITY`] ring slots.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Enables tracing, installing the global sink on first call. The
/// capacity only takes effect on the installing call; later calls just
/// flip tracing back on.
pub fn enable_with_capacity(capacity: usize) {
    SINK.get_or_init(|| TraceSink::new(capacity));
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off. The sink (and any recorded events) stays installed;
/// [`drain_events()`] still works after disabling.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// The global sink, if tracing is enabled. Hot paths use this to reach
/// the registry/ring; it returns `None` whenever [`enabled()`] is false.
#[inline]
pub fn sink() -> Option<&'static TraceSink> {
    if enabled() {
        SINK.get()
    } else {
        None
    }
}

/// The installed sink regardless of the enabled flag (for draining after
/// a run has disabled tracing). `None` if tracing was never enabled.
pub fn installed_sink() -> Option<&'static TraceSink> {
    SINK.get()
}

/// Emits one event (no-op when disabled). Callers on hot paths should
/// gate field construction behind [`enabled()`] to avoid building the
/// vector at all when tracing is off.
#[inline]
pub fn emit(kind: &'static str, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if let Some(sink) = sink() {
        sink.emit(Event::new(kind, name, fields));
    }
}

/// Removes and returns all retained events in emission order. Works even
/// after [`disable()`]; returns an empty vector if tracing was never
/// enabled.
pub fn drain_events() -> Vec<Event> {
    installed_sink()
        .map(|s| s.ring().drain())
        .unwrap_or_default()
}

/// Copies out the retained events without clearing the ring.
pub fn snapshot_events() -> Vec<Event> {
    installed_sink()
        .map(|s| s.ring().snapshot())
        .unwrap_or_default()
}

/// JSON snapshot of the metric registry (empty object when tracing was
/// never enabled).
pub fn registry_snapshot() -> noc_json::Value {
    installed_sink()
        .map(|s| s.registry().snapshot())
        .unwrap_or_else(|| noc_json::Value::Obj(Vec::new()))
}
