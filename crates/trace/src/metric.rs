//! Lock-free metric primitives: counters, gauges, and log2 histograms.
//!
//! All three are plain relaxed atomics — updates never block, reads race
//! with writers by design and only need to be approximately consistent
//! with each other (the same contract as the service metrics registry).

use noc_json::Value;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, inflight work, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram over `floor(log2(value))` buckets, 0..=63.
///
/// Bucket `i` holds observations in `[2^i, 2^(i+1))` (with 0 mapped to
/// bucket 0), so any quantile estimate — reported as the upper edge of the
/// bucket holding the target rank — is exact to within a factor of two.
/// Values are unitless; callers pick ns, µs, flits, whatever fits.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = 63 - (value | 1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 with no observations).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (0 < q <= 1): the upper edge of the
    /// bucket holding the `ceil(q·count)`-th observation. Returns 0 with
    /// no observations. The estimate never exceeds 2x the true quantile
    /// and is never below it.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Snapshot as a JSON object (count, mean, p50, p99).
    pub fn snapshot(&self) -> Value {
        noc_json::obj! {
            "count" => Value::Int(self.count() as i128),
            "sum" => Value::Int(self.sum() as i128),
            "mean" => Value::Float(self.mean()),
            "p50" => Value::Int(self.quantile(0.50) as i128),
            "p99" => Value::Int(self.quantile(0.99) as i128),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_brackets_observations() {
        let h = Log2Histogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.quantile(0.5), 32); // 30 lives in [16,32)
        assert_eq!(h.quantile(0.99), 1024); // 1000 lives in [512,1024)
    }
}
