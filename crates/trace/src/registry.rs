//! Named metric registry: get-or-create handles to counters, gauges, and
//! histograms.
//!
//! Lookup takes a read lock on a name map; the returned `Arc` handle is
//! then updated lock-free. Hot paths should look a handle up once and
//! reuse it, but even per-event lookups are just an uncontended RwLock
//! read plus a BTreeMap probe.

use crate::metric::{Counter, Gauge, Log2Histogram};
use noc_json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Shared, name-indexed metric store.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Log2Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(found);
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Snapshot of every metric as a JSON object with `counters`,
    /// `gauges`, and `histograms` sub-objects.
    pub fn snapshot(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, c)| (k.clone(), Value::Int(c.get() as i128)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, g)| (k.clone(), Value::Int(g.get() as i128)))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        noc_json::obj! {
            "counters" => Value::Obj(counters),
            "gauges" => Value::Obj(gauges),
            "histograms" => Value::Obj(histograms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").add(2);
        assert_eq!(reg.counter("a").get(), 3);
        reg.gauge("g").set(-4);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            snap.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
