//! Fixed-capacity ring buffer for trace events.
//!
//! Writers claim a global sequence number with one `fetch_add`, then take
//! the per-slot mutex for `seq % capacity` to store the event. The cursor
//! is lock-free; slot mutexes are uncontended unless two writers land on
//! the same slot modulo capacity at the same instant. Under wraparound a
//! late writer may race a newer event for the same slot, so stores keep
//! whichever event has the higher sequence number — drains therefore see
//! at most one event per slot, with strictly increasing sequence numbers
//! once sorted.

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded event log. Capacity is fixed at construction; old events are
/// overwritten once the buffer wraps.
#[derive(Debug)]
pub struct EventRing {
    head: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

impl EventRing {
    /// Creates a ring with room for `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Stamps `event.seq` with the next sequence number and stores it,
    /// overwriting the oldest event once full. Returns the sequence number.
    pub fn record(&self, mut event: Event) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        // Keep the newer event if a lagging writer lost the race.
        let keep = match guard.as_ref() {
            Some(existing) => existing.seq < seq,
            None => true,
        };
        if keep {
            *guard = Some(event);
        }
        seq
    }

    /// Copies out the retained events, sorted by sequence number, without
    /// clearing the buffer.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Removes and returns the retained events, sorted by sequence number.
    /// The global sequence counter keeps running across drains.
    pub fn drain(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).take())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str) -> Event {
        Event::new("point", name, Vec::new())
    }

    #[test]
    fn wraps_and_keeps_the_newest() {
        let ring = EventRing::new(4);
        for _ in 0..10 {
            ring.record(ev("x"));
        }
        let events = ring.drain();
        assert_eq!(ring.total_recorded(), 10);
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_clears_but_snapshot_does_not() {
        let ring = EventRing::new(8);
        ring.record(ev("a"));
        ring.record(ev("b"));
        assert_eq!(ring.snapshot().len(), 2);
        assert_eq!(ring.snapshot().len(), 2);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.drain().is_empty());
        // Sequence numbers keep counting after a drain.
        assert_eq!(ring.record(ev("c")), 2);
    }
}
