//! Lightweight spans: RAII guards that time a scope on the monotonic
//! clock and emit a `"span"` event (plus a duration histogram sample) on
//! drop.
//!
//! Nesting is tracked per thread: each open span pushes its name onto a
//! thread-local stack, so the emitted event carries its depth and parent.
//! When tracing is disabled the guard holds no timestamp and drop is a
//! no-op — constructing one costs a single relaxed atomic load.

use crate::event::{Event, FieldValue};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span()`] / [`span_labeled()`]. Emits on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    label: Option<String>,
    start: Option<Instant>,
}

/// Opens an unlabeled span. No-op (and allocation-free) when tracing is
/// disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open(name, None)
}

/// Opens a span carrying a free-form label (e.g. a request id). The label
/// closure only runs when tracing is enabled, so callers pay no formatting
/// cost when it is off.
#[inline]
pub fn span_labeled<F: FnOnce() -> String>(name: &'static str, label: F) -> SpanGuard {
    if crate::enabled() {
        open_enabled(name, Some(label()))
    } else {
        SpanGuard {
            name,
            label: None,
            start: None,
        }
    }
}

#[inline]
fn open(name: &'static str, label: Option<String>) -> SpanGuard {
    if crate::enabled() {
        open_enabled(name, label)
    } else {
        SpanGuard {
            name,
            label,
            start: None,
        }
    }
}

fn open_enabled(name: &'static str, label: Option<String>) -> SpanGuard {
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        name,
        label,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let (depth, parent) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.pop();
            (stack.len() as u64, stack.last().copied())
        });
        if let Some(sink) = crate::sink() {
            sink.registry().histogram(self.name).record(dur_ns);
            let mut fields = vec![
                ("dur_ns", FieldValue::U64(dur_ns)),
                ("depth", FieldValue::U64(depth)),
            ];
            if let Some(parent) = parent {
                fields.push(("parent", FieldValue::from(parent)));
            }
            if let Some(label) = self.label.take() {
                fields.push(("label", FieldValue::Str(label)));
            }
            sink.emit(Event::new("span", self.name, fields));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // The global sink is process-wide; this test must not enable it.
        let guard = span("noop");
        assert!(guard.start.is_none());
        drop(guard);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
