//! Integration tests for `noc-trace`: concurrent ring-buffer wraparound,
//! the histogram quantile error bound, and span nesting through the
//! global sink.

use noc_trace::{EventRing, FieldValue, Log2Histogram};
use std::sync::Mutex;

/// Tests that touch the process-global sink serialize through this lock
/// so their drains don't steal each other's events.
static GLOBAL_SINK: Mutex<()> = Mutex::new(());

#[test]
fn ring_wraparound_under_concurrent_writers() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 1_000;
    const CAPACITY: usize = 64;
    let ring = EventRing::new(CAPACITY);
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for i in 0..PER_WRITER {
                    ring.record(noc_trace::Event::new(
                        "point",
                        "stress",
                        vec![("i", FieldValue::U64(i))],
                    ));
                }
            });
        }
    });
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(ring.total_recorded(), total);
    let events = ring.drain();
    assert_eq!(events.len(), CAPACITY, "full ring retains exactly capacity");
    // Keep-newest overwrite: after all writers finish, each slot holds the
    // highest sequence number that mapped to it, i.e. exactly the last
    // `CAPACITY` sequence numbers, in order.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expected: Vec<u64> = (total - CAPACITY as u64..total).collect();
    assert_eq!(seqs, expected);
}

#[test]
fn histogram_quantile_error_is_within_2x() {
    let h = Log2Histogram::default();
    const N: u64 = 4096;
    for v in 1..=N {
        h.record(v);
    }
    for q in [0.10, 0.25, 0.50, 0.90, 0.99, 1.0] {
        // With values 1..=N the true q-quantile is its own rank.
        let true_q = ((q * N as f64).ceil() as u64).clamp(1, N);
        let est = h.quantile(q);
        assert!(
            est > true_q && est <= 2 * true_q,
            "q={q}: estimate {est} outside ({true_q}, {}]",
            2 * true_q
        );
    }
}

#[test]
fn span_nesting_tracks_depth_and_parent() {
    let _lock = GLOBAL_SINK.lock().unwrap();
    noc_trace::enable_with_capacity(1024);
    noc_trace::drain_events();
    {
        let _outer = noc_trace::span("nest_outer");
        {
            let _inner = noc_trace::span_labeled("nest_inner", || "case-7".to_string());
        }
    }
    let events = noc_trace::drain_events();
    let inner = events
        .iter()
        .find(|e| e.name == "nest_inner")
        .expect("inner span event");
    let outer = events
        .iter()
        .find(|e| e.name == "nest_outer")
        .expect("outer span event");
    assert_eq!(inner.kind, "span");
    assert_eq!(inner.field("depth"), Some(&FieldValue::U64(1)));
    assert_eq!(
        inner.field("parent"),
        Some(&FieldValue::Str("nest_outer".to_string()))
    );
    assert_eq!(
        inner.field("label"),
        Some(&FieldValue::Str("case-7".to_string()))
    );
    assert_eq!(outer.field("depth"), Some(&FieldValue::U64(0)));
    assert!(outer.field("parent").is_none());
    // The inner span closed first, so it was emitted first.
    assert!(inner.seq < outer.seq);
    // Both spans also landed duration samples in the registry.
    let sink = noc_trace::installed_sink().expect("sink installed");
    assert_eq!(sink.registry().histogram("nest_inner").count(), 1);
    assert_eq!(sink.registry().histogram("nest_outer").count(), 1);
}

#[test]
fn disabled_emission_is_dropped_and_drain_survives_disable() {
    let _lock = GLOBAL_SINK.lock().unwrap();
    noc_trace::enable_with_capacity(1024);
    noc_trace::drain_events();
    noc_trace::emit("point", "kept", Vec::new());
    noc_trace::disable();
    assert!(!noc_trace::enabled());
    noc_trace::emit("point", "lost", Vec::new());
    let events = noc_trace::drain_events();
    noc_trace::enable();
    assert!(events.iter().any(|e| e.name == "kept"));
    assert!(!events.iter().any(|e| e.name == "lost"));
}
