//! Traffic generation for NoC evaluation (§5.1 / §5.4 of the paper).
//!
//! Two families of workloads drive the simulator:
//!
//! * [`patterns::SyntheticPattern`] — the classic synthetic patterns the
//!   paper evaluates in Fig. 8: uniform random (UR), transpose (TP) and
//!   bit-reverse (BR), plus the usual companions (bit-complement, shuffle,
//!   hotspot, near-neighbour) for wider coverage.
//! * [`parsec`] — ten PARSEC-like benchmark profiles. The paper runs PARSEC
//!   2.0 under gem5; as a substitution (see DESIGN.md §2) each benchmark is
//!   modelled as a calibrated mixture of spatial patterns at a low injection
//!   rate, with the paper's 1:4 long:short packet mix.
//!
//! Both reduce to a [`matrix::TrafficMatrix`] — a per-source destination
//! distribution — which feeds the application-specific optimizer (§5.6.4)
//! directly and, combined with an injection rate and a packet mix, forms a
//! [`workload::Workload`] the cycle-level simulator samples packets from.

pub mod matrix;
pub mod parsec;
pub mod patterns;
pub mod trace;
pub mod workload;

pub use matrix::TrafficMatrix;
pub use parsec::{sharing_graph, ParsecBenchmark};
pub use patterns::SyntheticPattern;
pub use trace::{Trace, TraceEvent};
pub use workload::{PacketSpec, Workload};
