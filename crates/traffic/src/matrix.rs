//! Traffic matrices: per-source destination distributions.
//!
//! A [`TrafficMatrix`] is the `γ_ij` communication-rate matrix of §5.6.4,
//! normalised so each source's row is a probability distribution over
//! destinations. It is both the sampling structure the simulator draws
//! destinations from and the weight matrix the application-specific
//! optimizer consumes.

use crate::patterns::SyntheticPattern;
use noc_rng::Rng;
use std::sync::Arc;

/// A per-source destination distribution over an `n × n` mesh.
///
/// The rate table is immutable once normalised and shared behind an `Arc`,
/// so cloning a matrix (one clone per replica in a rate ladder or a
/// lockstep batch) is a refcount bump — K replicas sample from one copy of
/// the row data instead of dragging K copies through the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `N × N`: `rates[src * N + dst]`, each row summing to 1
    /// (or to 0 for sources that never inject).
    rates: Arc<[f64]>,
}

impl TrafficMatrix {
    /// Builds a matrix from raw non-negative rates, normalising each source
    /// row to sum to 1 (rows of all zeros stay zero: that source is silent).
    ///
    /// # Panics
    /// Panics if dimensions mismatch or any rate is negative.
    pub fn from_rates(n: usize, mut rates: Vec<f64>) -> Self {
        let routers = n * n;
        assert_eq!(rates.len(), routers * routers, "rates must be N x N");
        assert!(
            rates.iter().all(|&r| r >= 0.0 && r.is_finite()),
            "rates must be finite and non-negative"
        );
        for src in 0..routers {
            let row = &mut rates[src * routers..(src + 1) * routers];
            row[src] = 0.0; // self-traffic never enters the network
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                row.iter_mut().for_each(|r| *r /= sum);
            }
        }
        TrafficMatrix {
            n,
            rates: rates.into(),
        }
    }

    /// The matrix realising a synthetic pattern on an `n × n` mesh.
    pub fn from_pattern(pattern: SyntheticPattern, n: usize) -> Self {
        let routers = n * n;
        let mut rates = vec![0.0; routers * routers];
        match pattern {
            SyntheticPattern::UniformRandom => {
                for src in 0..routers {
                    for dst in 0..routers {
                        if src != dst {
                            rates[src * routers + dst] = 1.0;
                        }
                    }
                }
            }
            SyntheticPattern::Hotspot { weight } => {
                assert!((0.0..=1.0).contains(&weight), "hotspot weight in 0..=1");
                let hotspots = SyntheticPattern::default_hotspots(n);
                for src in 0..routers {
                    for dst in 0..routers {
                        if src == dst {
                            continue;
                        }
                        let uniform = (1.0 - weight) / (routers - 1) as f64;
                        let hot = if hotspots.contains(&dst) {
                            weight / hotspots.len() as f64
                        } else {
                            0.0
                        };
                        rates[src * routers + dst] = uniform + hot;
                    }
                }
            }
            SyntheticPattern::NearNeighbour => {
                for src in 0..routers {
                    let (x, y) = (src % n, src / n);
                    let mut neighbours = Vec::with_capacity(4);
                    if x > 0 {
                        neighbours.push(src - 1);
                    }
                    if x + 1 < n {
                        neighbours.push(src + 1);
                    }
                    if y > 0 {
                        neighbours.push(src - n);
                    }
                    if y + 1 < n {
                        neighbours.push(src + n);
                    }
                    for dst in neighbours {
                        rates[src * routers + dst] = 1.0;
                    }
                }
            }
            _ => {
                for src in 0..routers {
                    let dst = pattern
                        .permutation_target(src, n)
                        .expect("permutation pattern");
                    if dst != src {
                        rates[src * routers + dst] = 1.0;
                    }
                }
            }
        }
        TrafficMatrix::from_rates(n, rates)
    }

    /// A weighted mixture of matrices (used by the PARSEC-like profiles).
    ///
    /// # Panics
    /// Panics if the component list is empty or sizes differ.
    pub fn mixture(components: &[(TrafficMatrix, f64)]) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one matrix");
        let n = components[0].0.n;
        let len = components[0].0.rates.len();
        let mut rates = vec![0.0; len];
        for (m, w) in components {
            assert_eq!(m.n, n, "mixture components must share the mesh size");
            assert!(*w >= 0.0);
            for (acc, r) in rates.iter_mut().zip(m.rates.iter()) {
                *acc += w * r;
            }
        }
        TrafficMatrix::from_rates(n, rates)
    }

    /// Mesh side length.
    pub fn side(&self) -> usize {
        self.n
    }

    /// Number of routers `N = n²`.
    pub fn routers(&self) -> usize {
        self.n * self.n
    }

    /// The normalised rate `γ_src,dst`.
    pub fn rate(&self, src: usize, dst: usize) -> f64 {
        self.rates[src * self.routers() + dst]
    }

    /// The raw row-major matrix, as the application-specific optimizer
    /// expects it.
    pub fn as_slice(&self) -> &[f64] {
        &self.rates
    }

    /// Samples a destination for `src`, or `None` if the source is silent.
    pub fn sample_destination<R: Rng>(&self, src: usize, rng: &mut R) -> Option<usize> {
        let routers = self.routers();
        let row = &self.rates[src * routers..(src + 1) * routers];
        let mut x = rng.gen::<f64>();
        let mut last_nonzero = None;
        for (dst, &p) in row.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            last_nonzero = Some(dst);
            if x < p {
                return Some(dst);
            }
            x -= p;
        }
        // Floating-point slack: fall back to the last destination with mass.
        last_nonzero
    }

    /// Mean Manhattan distance of the distribution, in unit hops — a quick
    /// structural fingerprint used in tests and workload calibration.
    pub fn mean_manhattan(&self) -> f64 {
        let routers = self.routers();
        let mut total = 0.0;
        let mut mass = 0.0;
        for src in 0..routers {
            for dst in 0..routers {
                let p = self.rates[src * routers + dst];
                if p > 0.0 {
                    let (sx, sy) = (src % self.n, src / self.n);
                    let (dx, dy) = (dst % self.n, dst / self.n);
                    total += p * (sx.abs_diff(dx) + sy.abs_diff(dy)) as f64;
                    mass += p;
                }
            }
        }
        if mass == 0.0 {
            0.0
        } else {
            total / mass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_rng::rngs::SmallRng;
    use noc_rng::SeedableRng;

    #[test]
    fn rows_are_normalised() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4);
        for src in 0..16 {
            let sum: f64 = (0..16).map(|d| m.rate(src, d)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {src} sums to {sum}");
            assert_eq!(m.rate(src, src), 0.0);
        }
    }

    #[test]
    fn permutation_matrix_is_deterministic() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 4);
        // (1, 0) = id 1 -> (0, 1) = id 4.
        assert!((m.rate(1, 4) - 1.0).abs() < 1e-12);
        // Diagonal sources are silent (self-traffic removed).
        let diag_sum: f64 = (0..16).map(|d| m.rate(0, d)).sum();
        assert_eq!(diag_sum, 0.0);
    }

    #[test]
    fn hotspot_mass_matches_weight() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::Hotspot { weight: 0.4 }, 8);
        // From a non-corner source, corner mass ~= 0.4 + uniform share.
        let src = 20;
        let corner_mass: f64 = [0usize, 7, 56, 63].iter().map(|&d| m.rate(src, d)).sum();
        assert!(
            corner_mass > 0.4 && corner_mass < 0.45,
            "corner mass {corner_mass}"
        );
    }

    #[test]
    fn near_neighbour_targets_adjacent_only() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::NearNeighbour, 4);
        // Corner 0 has two neighbours: 1 and 4.
        assert!((m.rate(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.rate(0, 4) - 0.5).abs() < 1e-12);
        assert_eq!(m.rate(0, 5), 0.0);
        assert!(m.mean_manhattan() < 1.0 + 1e-12);
    }

    #[test]
    fn mixture_blends_mass() {
        let ur = TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4);
        let tp = TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 4);
        let mix = TrafficMatrix::mixture(&[(ur.clone(), 0.5), (tp.clone(), 0.5)]);
        // Source 1's transpose partner (id 4) carries extra mass.
        assert!(mix.rate(1, 4) > mix.rate(1, 5));
        // Rows still normalised.
        let sum: f64 = (0..16).map(|d| mix.rate(1, d)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_support() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample_destination(1, &mut rng), Some(4));
        }
        // Silent source (diagonal) yields None.
        assert_eq!(m.sample_destination(5, &mut rng), None);
    }

    #[test]
    fn sampling_covers_uniform_support() {
        let m = TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[m.sample_destination(3, &mut rng).unwrap()] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 15, "all non-self destinations reachable");
        assert!(!seen[3]);
    }

    #[test]
    fn transpose_mean_manhattan() {
        // Known closed form sanity: transpose on 8x8 averages |x-y|*2 over
        // all (x, y), which is 2·(n²-1)/(3n) = 5.25 for the uniform pair,
        // but only over off-diagonal sources here; just require it to exceed
        // the near-neighbour pattern's 1.0.
        let tp = TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 8);
        assert!(tp.mean_manhattan() > 4.0);
    }
}
