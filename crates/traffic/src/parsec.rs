//! PARSEC-like benchmark traffic profiles (substitution for gem5-driven
//! PARSEC 2.0 runs — see DESIGN.md §2).
//!
//! The paper evaluates ten multi-threaded PARSEC benchmarks on a full-system
//! simulator. What the placement study actually consumes from those runs is
//! (i) a *low* average injection rate ("the average contention per hop is
//! almost always less than 1 cycle", §4.2), (ii) a spatial communication
//! structure (shared-cache and memory-controller hotspots, neighbour
//! communication from data-parallel phases, scattered sharing), and (iii)
//! the 1:4 long:short packet mix (§5.1). Each profile below encodes a
//! benchmark's published communication character as a mixture of the
//! synthetic building blocks at a calibrated rate:
//!
//! * data-parallel, little sharing (blackscholes, swaptions): mostly
//!   memory-controller (hotspot) traffic at very low rates;
//! * pipeline benchmarks (dedup, ferret, x264): neighbour + uniform mixtures
//!   at moderate rates (stage-to-stage streaming);
//! * unstructured sharing (canneal): close to uniform random at the highest
//!   rate of the suite;
//! * stencil/particle codes (fluidanimate, bodytrack, raytrace, vips):
//!   neighbour-heavy mixtures.

use crate::matrix::TrafficMatrix;
use crate::patterns::SyntheticPattern;
use crate::workload::Workload;
use noc_model::PacketMix;
use noc_rng::rngs::SmallRng;
use noc_rng::{Rng, SeedableRng};

/// Builds a sparse sharing graph: each source communicates with a few fixed
/// partners (producer→consumer pipeline stages, data sharers, directory
/// homes). This is what makes real multi-threaded traffic *concentrated* —
/// the property the application-specific optimizer of §5.6.4 exploits.
/// Deterministic per (seed, n).
pub fn sharing_graph(n: usize, partners: usize, seed: u64) -> TrafficMatrix {
    let routers = n * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rates = vec![0.0; routers * routers];
    for src in 0..routers {
        let mut placed = 0;
        while placed < partners {
            let dst = rng.gen_range(0..routers);
            if dst != src && rates[src * routers + dst] == 0.0 {
                // Strongly unequal partner weights: one dominant sharer plus
                // minor ones (1, 1/4, 1/9, ...).
                let k = (placed + 1) as f64;
                rates[src * routers + dst] = 1.0 / (k * k);
                placed += 1;
            }
        }
    }
    TrafficMatrix::from_rates(n, rates)
}

/// The ten PARSEC 2.0 benchmarks of the paper's Fig. 6 / Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParsecBenchmark {
    /// Option pricing; embarrassingly parallel, memory-bound reads.
    Blackscholes,
    /// Body tracking; stencil-like neighbour exchange plus shared frames.
    Bodytrack,
    /// Cache-aware simulated annealing; highly unstructured sharing.
    Canneal,
    /// Stream deduplication pipeline.
    Dedup,
    /// Content-based similarity search pipeline.
    Ferret,
    /// SPH fluid simulation; spatial-neighbour dominated.
    Fluidanimate,
    /// Ray tracing; shared scene reads with irregular access.
    Raytrace,
    /// Swaption pricing; independent Monte-Carlo workers.
    Swaptions,
    /// Image processing pipeline.
    Vips,
    /// H.264 encoding; motion estimation neighbour traffic.
    X264,
}

impl ParsecBenchmark {
    /// All ten benchmarks in the paper's plotting order.
    pub const ALL: [ParsecBenchmark; 10] = [
        ParsecBenchmark::Blackscholes,
        ParsecBenchmark::Bodytrack,
        ParsecBenchmark::Canneal,
        ParsecBenchmark::Dedup,
        ParsecBenchmark::Ferret,
        ParsecBenchmark::Fluidanimate,
        ParsecBenchmark::Raytrace,
        ParsecBenchmark::Swaptions,
        ParsecBenchmark::Vips,
        ParsecBenchmark::X264,
    ];

    /// Lower-case benchmark name, as the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            ParsecBenchmark::Blackscholes => "blackscholes",
            ParsecBenchmark::Bodytrack => "bodytrack",
            ParsecBenchmark::Canneal => "canneal",
            ParsecBenchmark::Dedup => "dedup",
            ParsecBenchmark::Ferret => "ferret",
            ParsecBenchmark::Fluidanimate => "fluidanimate",
            ParsecBenchmark::Raytrace => "raytrace",
            ParsecBenchmark::Swaptions => "swaptions",
            ParsecBenchmark::Vips => "vips",
            ParsecBenchmark::X264 => "x264",
        }
    }

    /// Injection rate in packets per node per cycle. PARSEC NoC loads are
    /// low (well under saturation); rates differentiate the benchmarks'
    /// communication intensity.
    pub fn injection_rate(&self) -> f64 {
        match self {
            ParsecBenchmark::Blackscholes => 0.004,
            ParsecBenchmark::Bodytrack => 0.012,
            ParsecBenchmark::Canneal => 0.030,
            ParsecBenchmark::Dedup => 0.018,
            ParsecBenchmark::Ferret => 0.020,
            ParsecBenchmark::Fluidanimate => 0.015,
            ParsecBenchmark::Raytrace => 0.008,
            ParsecBenchmark::Swaptions => 0.005,
            ParsecBenchmark::Vips => 0.016,
            ParsecBenchmark::X264 => 0.022,
        }
    }

    /// Mixture weights `(uniform, hotspot(0.6), near-neighbour, sparse)`
    /// encoding the benchmark's spatial character, plus the sparse graph's
    /// partner count. Pipeline benchmarks are sparse-flow dominated
    /// (stage-to-stage streaming); data-parallel kernels lean on the
    /// memory-controller hotspots; stencil codes on neighbours; canneal is
    /// the most uniform of the suite.
    fn mixture_weights(&self) -> (f64, f64, f64, f64, usize) {
        match self {
            ParsecBenchmark::Blackscholes => (0.10, 0.70, 0.05, 0.15, 2),
            ParsecBenchmark::Bodytrack => (0.15, 0.25, 0.30, 0.30, 3),
            ParsecBenchmark::Canneal => (0.60, 0.10, 0.05, 0.25, 4),
            ParsecBenchmark::Dedup => (0.15, 0.20, 0.15, 0.50, 2),
            ParsecBenchmark::Ferret => (0.20, 0.20, 0.10, 0.50, 2),
            ParsecBenchmark::Fluidanimate => (0.10, 0.15, 0.50, 0.25, 2),
            ParsecBenchmark::Raytrace => (0.30, 0.30, 0.05, 0.35, 3),
            ParsecBenchmark::Swaptions => (0.15, 0.60, 0.05, 0.20, 2),
            ParsecBenchmark::Vips => (0.20, 0.25, 0.20, 0.35, 2),
            ParsecBenchmark::X264 => (0.20, 0.15, 0.35, 0.30, 3),
        }
    }

    /// The benchmark's traffic matrix on an `n × n` mesh.
    pub fn traffic_matrix(&self, n: usize) -> TrafficMatrix {
        let (ur, hs, nn, sp, partners) = self.mixture_weights();
        // Stable per-benchmark sharing graph, independent of the run seed.
        let seed = 0x9a5_0000 + *self as u64;
        TrafficMatrix::mixture(&[
            (
                TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
                ur,
            ),
            (
                TrafficMatrix::from_pattern(SyntheticPattern::Hotspot { weight: 0.6 }, n),
                hs,
            ),
            (
                TrafficMatrix::from_pattern(SyntheticPattern::NearNeighbour, n),
                nn,
            ),
            (sharing_graph(n, partners, seed), sp),
        ])
    }

    /// The complete simulator workload: matrix + rate + the paper's packet
    /// mix.
    pub fn workload(&self, n: usize) -> Workload {
        Workload::new(
            self.traffic_matrix(n),
            self.injection_rate(),
            PacketMix::paper(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_well_formed() {
        for b in ParsecBenchmark::ALL {
            let m = b.traffic_matrix(8);
            for src in 0..64 {
                let sum: f64 = (0..64).map(|d| m.rate(src, d)).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "{}: row {src} sums {sum}",
                    b.name()
                );
            }
            let rate = b.injection_rate();
            assert!(rate > 0.0 && rate < 0.05, "{} rate {rate}", b.name());
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<&str> = ParsecBenchmark::ALL.iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 10);
        assert_eq!(dedup.len(), 10);
        assert_eq!(names[0], "blackscholes");
        assert_eq!(names[9], "x264");
    }

    #[test]
    fn spatial_characters_differ() {
        // Fluidanimate (neighbour-heavy) must have much shorter mean
        // distance than canneal (uniform-heavy).
        let fluid = ParsecBenchmark::Fluidanimate.traffic_matrix(8);
        let canneal = ParsecBenchmark::Canneal.traffic_matrix(8);
        assert!(fluid.mean_manhattan() + 1.0 < canneal.mean_manhattan());
    }

    #[test]
    fn workload_carries_paper_mix() {
        let w = ParsecBenchmark::Dedup.workload(8);
        assert_eq!(w.mix().classes().len(), 2);
        assert!((w.injection_rate() - 0.018).abs() < 1e-12);
    }
}
