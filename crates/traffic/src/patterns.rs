//! Synthetic traffic patterns.
//!
//! Destinations are defined over the flat router id space of an `n × n`
//! mesh (`id = y·n + x`). Bit-indexed patterns (bit-reverse, bit-complement,
//! shuffle) require the router count to be a power of two, which every
//! `2^k × 2^k` mesh satisfies.

/// A synthetic spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyntheticPattern {
    /// Every destination (other than the source) equally likely — UR.
    UniformRandom,
    /// `(x, y)` sends to `(y, x)` — TP.
    Transpose,
    /// The flat id's bits reversed — BR.
    BitReverse,
    /// The flat id's bits complemented.
    BitComplement,
    /// The flat id rotated left by one bit (perfect shuffle).
    Shuffle,
    /// A fraction of traffic targets a fixed set of hotspot routers (the
    /// memory-controller corners by default); the rest is uniform.
    Hotspot {
        /// Probability mass sent to the hotspot set (0..=1).
        weight: f64,
    },
    /// Uniform over the source's mesh-adjacent routers.
    NearNeighbour,
}

impl SyntheticPattern {
    /// Short label used in experiment tables ("UR", "TP", "BR", ...).
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "UR",
            SyntheticPattern::Transpose => "TP",
            SyntheticPattern::BitReverse => "BR",
            SyntheticPattern::BitComplement => "BC",
            SyntheticPattern::Shuffle => "SH",
            SyntheticPattern::Hotspot { .. } => "HS",
            SyntheticPattern::NearNeighbour => "NN",
        }
    }

    /// The deterministic partner of `src` for permutation patterns, or
    /// `None` for distribution patterns (UR, hotspot, near-neighbour).
    pub fn permutation_target(&self, src: usize, n: usize) -> Option<usize> {
        let routers = n * n;
        match self {
            SyntheticPattern::Transpose => {
                let (x, y) = (src % n, src / n);
                Some(x * n + y)
            }
            SyntheticPattern::BitReverse => {
                let bits = routers.trailing_zeros();
                debug_assert!(routers.is_power_of_two());
                Some((src.reverse_bits() >> (usize::BITS - bits)) & (routers - 1))
            }
            SyntheticPattern::BitComplement => Some(!src & (routers - 1)),
            SyntheticPattern::Shuffle => {
                let bits = routers.trailing_zeros();
                Some(((src << 1) | (src >> (bits - 1))) & (routers - 1))
            }
            _ => None,
        }
    }

    /// The default hotspot set: the four corner routers, standing in for
    /// edge memory controllers.
    pub fn default_hotspots(n: usize) -> Vec<usize> {
        vec![0, n - 1, n * (n - 1), n * n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_swaps_coordinates() {
        let p = SyntheticPattern::Transpose;
        // (1, 2) on 4x4: id 9 -> (2, 1): id 6.
        assert_eq!(p.permutation_target(2 * 4 + 1, 4), Some(4 + 2));
        // Diagonal maps to itself.
        assert_eq!(p.permutation_target(5, 4), Some(5));
    }

    #[test]
    fn bit_reverse_is_involutive() {
        let p = SyntheticPattern::BitReverse;
        for n in [4usize, 8] {
            for src in 0..n * n {
                let dst = p.permutation_target(src, n).unwrap();
                assert_eq!(p.permutation_target(dst, n), Some(src));
            }
        }
        // 6-bit example on 8x8: 0b000001 -> 0b100000.
        assert_eq!(p.permutation_target(1, 8), Some(32));
    }

    #[test]
    fn bit_complement_is_involutive_and_maximal_distance() {
        let p = SyntheticPattern::BitComplement;
        assert_eq!(p.permutation_target(0, 8), Some(63));
        assert_eq!(p.permutation_target(63, 8), Some(0));
        for src in 0..64 {
            let dst = p.permutation_target(src, 8).unwrap();
            assert_eq!(p.permutation_target(dst, 8), Some(src));
        }
    }

    #[test]
    fn shuffle_rotates_bits() {
        let p = SyntheticPattern::Shuffle;
        // 6-bit space: 0b100000 -> 0b000001.
        assert_eq!(p.permutation_target(32, 8), Some(1));
        assert_eq!(p.permutation_target(3, 8), Some(6));
    }

    #[test]
    fn permutations_are_bijective() {
        for p in [
            SyntheticPattern::Transpose,
            SyntheticPattern::BitReverse,
            SyntheticPattern::BitComplement,
            SyntheticPattern::Shuffle,
        ] {
            let mut seen = [false; 64];
            for src in 0..64 {
                let dst = p.permutation_target(src, 8).unwrap();
                assert!(!seen[dst], "{p:?} not a bijection");
                seen[dst] = true;
            }
        }
    }

    #[test]
    fn distribution_patterns_have_no_fixed_target() {
        assert_eq!(
            SyntheticPattern::UniformRandom.permutation_target(5, 4),
            None
        );
        assert_eq!(
            SyntheticPattern::Hotspot { weight: 0.4 }.permutation_target(5, 4),
            None
        );
    }

    #[test]
    fn default_hotspots_are_corners() {
        assert_eq!(SyntheticPattern::default_hotspots(8), vec![0, 7, 56, 63]);
    }
}
