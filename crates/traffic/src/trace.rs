//! Traffic traces: recorded packet streams for replay and for deriving
//! empirical traffic matrices.
//!
//! The paper's application-specific flow (§5.6.4) is "first run each
//! benchmark on a baseline network once to collect traffic statistics, then
//! apply the revised scheme". A [`Trace`] is that collection step's output:
//! a time-ordered list of injections that can be (a) replayed cycle-exactly
//! through the simulator and (b) collapsed into the `γ` matrix the
//! application-specific optimizer consumes.

use crate::matrix::TrafficMatrix;
use crate::workload::Workload;
use noc_rng::rngs::SmallRng;
use noc_rng::SeedableRng;

/// One packet injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source router (flat id).
    pub src: usize,
    /// Destination router (flat id).
    pub dst: usize,
    /// Payload size in bits.
    pub bits: u32,
}

/// A time-ordered packet trace over an `n × n` mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    side: usize,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from events, sorting them by cycle (stably: ties keep
    /// their order).
    ///
    /// # Panics
    /// Panics if any endpoint is out of range or a packet is self-addressed.
    pub fn new(side: usize, mut events: Vec<TraceEvent>) -> Self {
        let routers = side * side;
        for e in &events {
            assert!(e.src < routers && e.dst < routers, "endpoint out of range");
            assert!(e.src != e.dst, "self-addressed packet in trace");
            assert!(e.bits > 0, "empty packet in trace");
        }
        events.sort_by_key(|e| e.cycle);
        Trace { side, events }
    }

    /// Mesh side length the trace was recorded on.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The events, cycle-ordered.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Last injection cycle (0 for an empty trace).
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Records a trace by sampling a workload for `cycles` cycles — the
    /// "collect traffic statistics" step run against a baseline network.
    pub fn record(workload: &Workload, cycles: u64, seed: u64) -> Self {
        let side = workload.matrix().side();
        let nodes = side * side;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for cycle in 0..cycles {
            for src in 0..nodes {
                if let Some(spec) = workload.generate(src, &mut rng) {
                    events.push(TraceEvent {
                        cycle,
                        src,
                        dst: spec.dst,
                        bits: spec.bits,
                    });
                }
            }
        }
        Trace { side, events }
    }

    /// Collapses the trace into an empirical traffic matrix `γ` (packet
    /// counts, row-normalised) — the optimizer-facing statistic.
    pub fn to_matrix(&self) -> TrafficMatrix {
        let routers = self.side * self.side;
        let mut rates = vec![0.0; routers * routers];
        for e in &self.events {
            rates[e.src * routers + e.dst] += 1.0;
        }
        TrafficMatrix::from_rates(self.side, rates)
    }

    /// Mean injection rate in packets per node per cycle over the recorded
    /// horizon.
    pub fn mean_rate(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let horizon = (self.horizon() + 1) as f64;
        self.events.len() as f64 / (horizon * (self.side * self.side) as f64)
    }

    /// Serialises the trace as CSV lines `cycle,src,dst,bits`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,src,dst,bits\n");
        for e in &self.events {
            out.push_str(&format!("{},{},{},{}\n", e.cycle, e.src, e.dst, e.bits));
        }
        out
    }

    /// Parses a CSV trace (`cycle,src,dst,bits`, with or without header).
    pub fn from_csv(side: usize, csv: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("cycle") {
                continue;
            }
            let mut cols = line.split(',').map(str::trim);
            let mut next = |name: &str| {
                cols.next()
                    .ok_or_else(|| format!("line {}: missing {name}", i + 1))
            };
            let cycle = next("cycle")?
                .parse()
                .map_err(|_| format!("line {}: bad cycle", i + 1))?;
            let src = next("src")?
                .parse()
                .map_err(|_| format!("line {}: bad src", i + 1))?;
            let dst = next("dst")?
                .parse()
                .map_err(|_| format!("line {}: bad dst", i + 1))?;
            let bits = next("bits")?
                .parse()
                .map_err(|_| format!("line {}: bad bits", i + 1))?;
            events.push(TraceEvent {
                cycle,
                src,
                dst,
                bits,
            });
        }
        let routers = side * side;
        if events
            .iter()
            .any(|e| e.src >= routers || e.dst >= routers || e.src == e.dst || e.bits == 0)
        {
            return Err("trace contains invalid events for this mesh size".into());
        }
        Ok(Trace::new(side, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::SyntheticPattern;
    use noc_model::PacketMix;

    fn sample_trace() -> Trace {
        Trace::new(
            4,
            vec![
                TraceEvent {
                    cycle: 5,
                    src: 0,
                    dst: 3,
                    bits: 128,
                },
                TraceEvent {
                    cycle: 1,
                    src: 2,
                    dst: 9,
                    bits: 512,
                },
                TraceEvent {
                    cycle: 5,
                    src: 1,
                    dst: 0,
                    bits: 128,
                },
            ],
        )
    }

    #[test]
    fn events_are_cycle_sorted() {
        let t = sample_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].cycle, 1);
        assert_eq!(t.horizon(), 5);
    }

    #[test]
    fn csv_round_trips() {
        let t = sample_trace();
        let parsed = Trace::from_csv(4, &t.to_csv()).unwrap();
        assert_eq!(parsed, t);
        assert!(Trace::from_csv(2, &t.to_csv()).is_err()); // out of range for 2x2
        assert!(Trace::from_csv(4, "1,2").is_err());
    }

    #[test]
    fn recorded_trace_matches_workload_statistics() {
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4),
            0.05,
            PacketMix::paper(),
        );
        let trace = Trace::record(&workload, 20_000, 3);
        assert!(
            (trace.mean_rate() - 0.05).abs() < 0.005,
            "rate {}",
            trace.mean_rate()
        );
        // The empirical matrix approaches the true (uniform) matrix.
        let empirical = trace.to_matrix();
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    assert_eq!(empirical.rate(src, dst), 0.0);
                } else {
                    // ~1000 samples/source: allow ~4 sigma over 240 cells.
                    assert!(
                        (empirical.rate(src, dst) - 1.0 / 15.0).abs() < 0.033,
                        "rate({src},{dst}) = {}",
                        empirical.rate(src, dst)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn rejects_self_traffic() {
        let _ = Trace::new(
            4,
            vec![TraceEvent {
                cycle: 0,
                src: 1,
                dst: 1,
                bits: 64,
            }],
        );
    }
}
