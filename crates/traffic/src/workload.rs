//! Workloads: what the cycle-level simulator samples packets from.

use crate::matrix::TrafficMatrix;
use noc_model::PacketMix;
use noc_rng::Rng;

/// A packet to inject: destination and payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Destination router (flat id).
    pub dst: usize,
    /// Payload size in bits.
    pub bits: u32,
}

/// A complete traffic workload: spatial distribution, temporal intensity,
/// and packet-size population.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    matrix: TrafficMatrix,
    injection_rate: f64,
    mix: PacketMix,
}

impl Workload {
    /// Builds a workload.
    ///
    /// # Panics
    /// Panics unless `0 <= injection_rate <= 1` (packets per node per
    /// cycle — a node can start at most one packet per cycle).
    pub fn new(matrix: TrafficMatrix, injection_rate: f64, mix: PacketMix) -> Self {
        assert!(
            (0.0..=1.0).contains(&injection_rate),
            "injection rate must be in 0..=1 packets/node/cycle"
        );
        Workload {
            matrix,
            injection_rate,
            mix,
        }
    }

    /// The spatial traffic matrix.
    pub fn matrix(&self) -> &TrafficMatrix {
        &self.matrix
    }

    /// Packets per node per cycle offered by every source.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }

    /// The packet-size population.
    pub fn mix(&self) -> &PacketMix {
        &self.mix
    }

    /// A copy of this workload at a different injection rate (throughput
    /// sweeps hold the matrix and mix fixed while scaling the rate).
    pub fn at_rate(&self, injection_rate: f64) -> Self {
        Workload::new(self.matrix.clone(), injection_rate, self.mix.clone())
    }

    /// Bernoulli injection: samples whether node `src` starts a packet this
    /// cycle, and if so its destination and size.
    pub fn generate<R: Rng>(&self, src: usize, rng: &mut R) -> Option<PacketSpec> {
        if rng.gen::<f64>() >= self.injection_rate {
            return None;
        }
        let dst = self.matrix.sample_destination(src, rng)?;
        Some(PacketSpec {
            dst,
            bits: self.sample_bits(rng),
        })
    }

    /// Samples a packet size from the mix.
    pub fn sample_bits<R: Rng>(&self, rng: &mut R) -> u32 {
        let mut x = rng.gen::<f64>();
        let classes = self.mix.classes();
        for c in classes {
            if x < c.fraction {
                return c.bits;
            }
            x -= c.fraction;
        }
        classes.last().expect("mix is non-empty").bits
    }

    /// Offered load in bits per node per cycle — used to position sweeps
    /// relative to saturation.
    pub fn offered_bits_per_node(&self) -> f64 {
        self.injection_rate * self.mix.mean_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::SyntheticPattern;
    use noc_rng::rngs::SmallRng;
    use noc_rng::SeedableRng;

    fn ur_workload(rate: f64) -> Workload {
        Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4),
            rate,
            PacketMix::paper(),
        )
    }

    #[test]
    fn injection_rate_is_respected() {
        let w = ur_workload(0.25);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 40_000;
        let injected = (0..trials)
            .filter(|_| w.generate(5, &mut rng).is_some())
            .count();
        let rate = injected as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "measured rate {rate}");
    }

    #[test]
    fn zero_rate_never_injects() {
        let w = ur_workload(0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..1000).all(|_| w.generate(0, &mut rng).is_none()));
    }

    #[test]
    fn packet_sizes_follow_the_mix() {
        let w = ur_workload(1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 50_000;
        let long = (0..trials)
            .filter(|_| w.sample_bits(&mut rng) == 512)
            .count();
        let frac = long as f64 / trials as f64;
        assert!((frac - 0.2).abs() < 0.01, "long fraction {frac}");
    }

    #[test]
    fn destinations_never_self() {
        let w = ur_workload(1.0);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            if let Some(spec) = w.generate(7, &mut rng) {
                assert_ne!(spec.dst, 7);
            }
        }
    }

    #[test]
    fn at_rate_scales_offered_load() {
        let w = ur_workload(0.01);
        let w2 = w.at_rate(0.02);
        assert!((w2.offered_bits_per_node() - 2.0 * w.offered_bits_per_node()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "injection rate")]
    fn rejects_super_unit_rates() {
        let _ = ur_workload(1.5);
    }
}
