//! Builds a hand-crafted express topology, proves it deadlock-free via the
//! channel-dependency-graph check, and measures its saturation throughput —
//! the workflow a NoC designer would use to evaluate their own placement.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use express_noc::model::PacketMix;
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::sim::{saturation_sweep, SimConfig};
use express_noc::topology::{display, MeshTopology, RowPlacement};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn main() {
    // A designer's guess: a "binary tree" of express links over 8 routers.
    let row = RowPlacement::with_links(8, [(0, 4), (4, 7), (0, 2), (2, 4), (4, 6)])
        .expect("links are valid");
    println!(
        "custom row placement (max cross-section {}):",
        row.max_cross_section()
    );
    println!("{}", display::render_row(&row));

    let topo = MeshTopology::uniform(8, &row);
    let dor = DorRouter::new(&topo, HopWeights::PAPER);

    // Deadlock audit: the routing relation's channel dependency graph must
    // be acyclic (Dally & Seitz).
    match channel_dependency_cycle(&topo, &dor) {
        None => println!("deadlock check: PASS (channel dependency graph is acyclic)"),
        Some(cycle) => {
            println!("deadlock check: FAIL, cycle {cycle:?}");
            return;
        }
    }

    // The placement's cross-sections demand C = 3; the budget only admits
    // powers of two, so it runs at C = 4 => 64-bit flits.
    let flit_bits = 64;
    let workload = Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::Transpose, 8),
        0.01,
        PacketMix::paper(),
    );
    let result = saturation_sweep(
        &topo,
        &workload,
        &SimConfig::throughput_run(flit_bits, 5),
        0.004,
    );
    println!("\ntranspose traffic saturation sweep:");
    for s in &result.samples {
        println!(
            "  offered {:.4} -> accepted {:.4} (latency {:.1} cycles)",
            s.offered, s.accepted, s.avg_latency
        );
    }
    println!(
        "saturation throughput: {:.3} packets/node/cycle",
        result.saturation
    );
}
