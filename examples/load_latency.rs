//! Latency-versus-load curves: the analytic contention model against the
//! cycle-level simulator, for the mesh and an optimized express topology.
//!
//! ```text
//! cargo run --release --example load_latency
//! ```

use express_noc::model::{ContentionModel, LinkBudget, PacketMix};
use express_noc::placement::{optimize_network, InitialStrategy, SaParams};
use express_noc::routing::{DorRouter, HopWeights};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::MeshTopology;
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn main() {
    let n = 8;
    let budget = LinkBudget::paper(n);
    let mix = PacketMix::paper();
    let design = optimize_network(
        &budget,
        &mix,
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        1,
    );
    let best = design.best();
    println!(
        "optimized design: C = {}, b = {} bits\n",
        best.c_limit, best.flit_bits
    );

    let matrix = TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n);
    let contention = ContentionModel::paper();
    let candidates = [
        ("Mesh", MeshTopology::mesh(n), 256u32),
        ("D&C_SA", design.best_topology(n), best.flit_bits),
    ];

    for (label, topo, flit_bits) in &candidates {
        let dor = DorRouter::new(topo, HopWeights::PAPER);
        let mean_flits = mix.mean_flits(*flit_bits);
        let serialization = mix.serialization_latency(*flit_bits);
        println!("{label}:");
        println!(
            "{:>8}  {:>10}  {:>10}  {:>8}",
            "rate", "model", "sim", "max rho"
        );
        for rate in [0.01, 0.03, 0.06, 0.1, 0.15] {
            let analysis =
                contention.analyze(&dor, matrix.as_slice(), rate, mean_flits, serialization);
            let workload = Workload::new(matrix.clone(), rate, mix.clone());
            let mut config = SimConfig::latency_run(*flit_bits, 7);
            config.warmup_cycles = 2_000;
            config.measure_cycles = 8_000;
            let stats = Simulator::new(topo, workload, config).run();
            println!(
                "{rate:>8.2}  {:>10.1}  {:>10.1}  {:>8.2}",
                analysis.predicted_latency, stats.avg_packet_latency, analysis.max_utilization
            );
        }
        let sat = contention
            .analyze(&dor, matrix.as_slice(), 0.01, mean_flits, serialization)
            .saturation_rate;
        println!("analytic saturation estimate: {sat:.3} packets/node/cycle\n");
    }
}
