//! Compares Mesh, HFB and the optimized placement on a PARSEC-like workload,
//! reporting latency and router power — a miniature of the paper's Fig. 6
//! and Fig. 9 for a single benchmark.
//!
//! ```text
//! cargo run --release --example parsec_comparison [benchmark]
//! ```

use express_noc::model::LinkBudget;
use express_noc::placement::{optimize_network, InitialStrategy, SaParams};
use express_noc::power::{network_power, PowerConfig};
use express_noc::routing::HopWeights;
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{hfb_mesh, hfb_row, implied_link_limit, MeshTopology};
use express_noc::traffic::ParsecBenchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dedup".into());
    let bench = ParsecBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}, using dedup");
            ParsecBenchmark::Dedup
        });
    let n = 8;
    let budget = LinkBudget::paper(n);
    let workload = bench.workload(n);
    println!(
        "benchmark {} (injection {:.3} packets/node/cycle)\n",
        bench.name(),
        workload.injection_rate()
    );

    let design = optimize_network(
        &budget,
        &express_noc::model::PacketMix::paper(),
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        1,
    );
    let hfb_c = implied_link_limit(&hfb_row(n));
    let candidates = [
        ("Mesh", MeshTopology::mesh(n), 256u32),
        (
            "HFB",
            hfb_mesh(n),
            budget.flit_bits(hfb_c).expect("power of two"),
        ),
        ("D&C_SA", design.best_topology(n), design.best().flit_bits),
    ];

    println!(
        "{:>8}  {:>12}  {:>10}  {:>10}  {:>10}",
        "scheme", "latency(cyc)", "static(W)", "dynamic(W)", "total(W)"
    );
    for (label, topo, flit_bits) in candidates {
        let stats = Simulator::new(
            &topo,
            workload.clone(),
            SimConfig::latency_run(flit_bits, 3),
        )
        .run();
        let power = network_power(&topo, flit_bits, 10_240, &stats, &PowerConfig::dsent_32nm());
        println!(
            "{label:>8}  {:>12.1}  {:>10.2}  {:>10.2}  {:>10.2}",
            stats.avg_packet_latency,
            power.total.static_total(),
            power.total.dynamic_total(),
            power.total.total()
        );
    }
}
