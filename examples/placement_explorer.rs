//! Reproduces the paper's worked example (Fig. 2 / Fig. 3): solve `P̂(8,4)`,
//! show the connection matrix, the express-link placement, and the routing
//! table of the first router.
//!
//! ```text
//! cargo run --release --example placement_explorer
//! ```

use express_noc::placement::objective::AllPairsObjective;
use express_noc::placement::{exhaustive_optimal, solve_row, InitialStrategy, SaParams};
use express_noc::routing::{directional_apsp, HopWeights, RowRouting};
use express_noc::topology::{display, ConnectionMatrix};

fn main() {
    let objective = AllPairsObjective::paper();

    // Solve P̂(8,4) with D&C-seeded simulated annealing (Table 1 schedule).
    let outcome = solve_row(
        8,
        4,
        &objective,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        7,
    );
    println!(
        "D&C_SA solved P(8,4): objective {:.4} cycles after {} evaluations",
        outcome.best_objective, outcome.evaluations
    );

    // Cross-check against the exhaustive optimum (§5.6.3).
    let optimal = exhaustive_optimal(8, 4, &objective);
    println!(
        "exhaustive optimum: {:.4} cycles ({} evaluations over {} DFS nodes)\n",
        optimal.best_objective, optimal.evaluations, optimal.nodes
    );

    // Fig. 2(a): the connection-matrix encoding of the solution.
    let matrix = ConnectionMatrix::encode(&outcome.best, 4).expect("solution fits C = 4");
    println!("{}", display::render_matrix(&matrix));

    // Fig. 2(b): the placement itself.
    println!("{}", display::render_row(&outcome.best));

    // Fig. 3(b): the routing table of router 0 (the paper's Router 1).
    let apsp = directional_apsp(&outcome.best, HopWeights::PAPER);
    let routing = RowRouting::from_apsp(&apsp);
    let table = routing.table(0);
    println!("routing table of router 0 (X dimension):");
    println!("  neighbours/outports: {:?}", table.neighbours);
    for dest in 1..8 {
        println!(
            "  dest {dest}: outport #{} -> next hop router {} (head latency {} cycles)",
            table.port_for(dest).expect("remote destination") + 1,
            table.next_hop(dest).expect("remote destination"),
            apsp.dist(0, dest)
        );
    }
}
