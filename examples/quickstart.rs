//! Quickstart: optimize express-link placement for an 8×8 mesh under a
//! bisection-bandwidth budget, then verify the win in cycle-level simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use express_noc::model::{LinkBudget, PacketMix};
use express_noc::placement::{optimize_network, InitialStrategy, SaParams};
use express_noc::routing::HopWeights;
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{display, MeshTopology};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};

fn main() {
    // 1. The design problem: an 8×8 mesh whose bisection supports 256-bit
    //    flits at C = 1 (the paper's §5.1 setting).
    let budget = LinkBudget::paper(8);
    println!(
        "admissible link limits C under the budget: {:?}",
        budget.link_limits()
    );

    // 2. Run the paper's optimizer: for every C, divide-and-conquer seeded
    //    simulated annealing on the 1D row problem; pick the best C.
    let design = optimize_network(
        &budget,
        &PacketMix::paper(),
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        42,
    );
    for p in &design.points {
        println!(
            "C = {:>2}: b = {:>3} bits, L_D = {:>5.2}, L_S = {:.2}, total = {:.2} cycles",
            p.c_limit, p.flit_bits, p.avg_head, p.avg_serialization, p.avg_latency
        );
    }
    let best = design.best();
    println!(
        "\nbest design: C = {} (b = {} bits)",
        best.c_limit, best.flit_bits
    );
    println!("{}", display::render_row(&best.placement));

    // 3. Verify in the cycle-level simulator under uniform-random traffic.
    let workload = Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 8),
        0.02,
        PacketMix::paper(),
    );
    let mesh = Simulator::new(
        &MeshTopology::mesh(8),
        workload.clone(),
        SimConfig::latency_run(256, 1),
    )
    .run();
    let optimized = Simulator::new(
        &design.best_topology(8),
        workload,
        SimConfig::latency_run(best.flit_bits, 1),
    )
    .run();
    println!(
        "simulated UR latency: mesh = {:.1} cycles, optimized = {:.1} cycles ({:.1}% lower)",
        mesh.avg_packet_latency,
        optimized.avg_packet_latency,
        (1.0 - optimized.avg_packet_latency / mesh.avg_packet_latency) * 100.0
    );
}
