//! `express-noc-cli` — command-line front end for the express-link
//! placement toolkit.
//!
//! ```text
//! express-noc-cli solve    --n 8 --c 4 [--strategy dnc|random|greedy] [--moves 10000] [--seed 42]
//!                          [--chains 1] [--evaluator incremental|full]
//! express-noc-cli checkpoint --n 8 --c 4 --snapshot job.nsnp [--stages 3] [--moves 10000]
//!                          [--seed 42] [--chains 1]
//! express-noc-cli resume   --snapshot job.nsnp
//! express-noc-cli optimal  --n 8 --c 3
//! express-noc-cli sweep    --n 8 [--base-flit 256] [--seed 42] [--chains 1]
//! express-noc-cli render   --n 8 --links 0-3,3-7,1-4
//! express-noc-cli simulate --n 8 --pattern ur|tp|br|bc|sh|hs|nn --rate 0.02
//!                          [--links 0-3,3-7] [--flit 64] [--cycles 20000] [--seed 42]
//!                          [--trace-out trace.ndjson]
//! express-noc-cli serve    [--addr 127.0.0.1:7474] [--workers N] [--queue N] [--cache N]
//!                          [--peers A,B,C --node-id I] [--vnodes 16] [--replicas 2]
//! express-noc-cli request  '<json>' [--addr 127.0.0.1:7474]
//! express-noc-cli loadgen  [--addr A[,B,...]] [--connections 4] [--requests 50]
//!                          [--kind solve|simulate] [--n 8] [--c 4] [--distinct 8]
//! express-noc-cli cluster-sim [--nodes 3] [--seed 0] [--requests 12]
//!                          [--partition-at T] [--heal-at T] [--kill NODE --kill-at T]
//! express-noc-cli scenario expand|run|describe <manifest.json> [--workers N]
//!                          [--batch-lanes K] [--addr 127.0.0.1:7474]
//! express-noc-cli frontier --n 8 [--base-flit 256] [--weight-steps 5] [--moves M]
//!                          [--seed S] [--workers N] [--addr 127.0.0.1:7474]
//! ```

use express_noc::cluster::{ClusterSim, ScriptAction, TcpForwarder};
use express_noc::model::{LatencyModel, LinkBudget, PacketMix};
use express_noc::placement::objective::AllPairsObjective;
use express_noc::placement::{
    exhaustive_optimal, optimize_network, solve_row, EvalMode, InitialStrategy, SaParams, SolveJob,
};
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::service::protocol::{self, Envelope, Request, SimulateRequest, SolveRequest};
use express_noc::service::{generate_load_multi, Client, Server, ServiceConfig};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{display, MeshTopology, RowPlacement};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `request` takes a positional JSON argument before its flags, and
    // `scenario` takes a positional action + manifest path.
    if command == "request" {
        return match cmd_request(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "scenario" {
        return match cmd_scenario(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_flags(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `--trace-out PATH` enables the global telemetry sink for the run
    // and writes the drained event log as NDJSON afterwards.
    let trace_out = opts.get("trace-out").cloned();
    if trace_out.is_some() {
        express_noc::trace::enable();
    }
    let result = match command.as_str() {
        "solve" => cmd_solve(&opts),
        "checkpoint" => cmd_checkpoint(&opts),
        "resume" => cmd_resume(&opts),
        "optimal" => cmd_optimal(&opts),
        "sweep" => cmd_sweep(&opts),
        "render" => cmd_render(&opts),
        "simulate" => cmd_simulate(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "cluster-sim" => cmd_cluster_sim(&opts),
        "frontier" => cmd_frontier(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    let result = result.and_then(|()| match &trace_out {
        Some(path) => write_trace(path),
        None => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "express-noc-cli — express-link placement toolkit

commands:
  solve     --n <N> --c <C> [--strategy dnc|random|greedy] [--moves M] [--seed S]
            [--chains K] [--evaluator incremental|full] [--trace-out PATH]
            solve the 1D placement problem P(N, C) with simulated annealing;
            K > 1 runs K independent chains in parallel and keeps the best
  checkpoint --n <N> --c <C> --snapshot FILE [--stages T] [--strategy dnc|random|greedy]
            [--moves M] [--seed S] [--chains K] [--evaluator incremental|full]
            run T cooling stages of the solve, then write a versioned
            snapshot (docs/SNAPSHOTS.md) to FILE; prints the rolling
            state hash so two checkpoints can be compared at a glance
  resume    --snapshot FILE
            restore a checkpointed solve from FILE and run it to
            completion; the output is byte-identical to the `solve`
            the checkpoint interrupted
  optimal   --n <N> --c <C>
            exhaustive branch-and-bound optimum of P(N, C)
  sweep     --n <N> [--base-flit BITS] [--seed S] [--chains K]
            full network optimization across all admissible link limits
  render    --n <N> --links A-B,C-D,...
            validate and draw a placement; check deadlock freedom
  simulate  --n <N> --pattern ur|tp|br|bc|sh|hs|nn --rate R
            [--links A-B,...] [--flit BITS] [--cycles M] [--seed S] [--trace-out PATH]
            cycle-level simulation of a workload on a placement
  serve     [--addr 127.0.0.1:7474] [--workers N] [--queue N] [--cache N]
            [--peers A,B,C --node-id I] [--vnodes 16] [--replicas 2]
            run the placement daemon (NDJSON over TCP; Ctrl-C drains);
            with --peers, forward cache-shard-owned requests to peers
  request   '<json>' [--addr 127.0.0.1:7474]
            send one request line to a running daemon, pretty-print the reply
  loadgen   [--addr A[,B,...]] [--connections 4] [--requests 50]
            [--kind solve|simulate] [--n 8] [--c 4] [--moves 2000]
            [--distinct 8] [--deadline-ms 30000]
            drive concurrent load (round-robin over comma-separated peers,
            failing over on transport errors); print throughput, latency
            percentiles, and the daemon's cache hit counters
  cluster-sim
            [--nodes 3] [--seed 0] [--requests 12] [--workers 1]
            [--drop 0.0] [--dup 0.0] [--partition-at T] [--heal-at T]
            [--kill NODE] [--kill-at T] [--verbose 0|1]
            deterministic in-process cluster simulation: sharded requests,
            forwarding, replica failover, gossip-driven ring changes; same
            seed and script reproduce the identical event log
  scenario  expand|run|describe <manifest.json> [--workers N] [--batch-lanes K]
            [--addr HOST:PORT]
            scenario manifests (docs/SCENARIOS.md): 'describe' summarises the
            manifest and its expansion, 'expand' prints one NDJSON line per
            resolved scenario (name, fingerprint, axes), 'run' executes the
            whole batch and streams one NDJSON result line per scenario plus
            a summary line — byte-identical for any --workers and any
            --batch-lanes (lockstep replica lanes; 0 = default, 1 = scalar);
            with --addr the manifest is sent to a running daemon instead and
            its streamed response is printed verbatim
  frontier  --n <N> [--base-flit BITS] [--weight-steps K] [--moves M] [--seed S]
            [--workers W] [--addr HOST:PORT]
            latency x power x link-budget Pareto frontier (docs/FRONTIER.md):
            solve K weighted scalarizations per admissible link limit C and
            print one NDJSON line per nondominated point plus a summary line
            carrying the frontier fingerprint; byte-identical for any
            --workers, and with --addr the request runs on a daemon whose
            streamed payloads print as the same bytes as the local path

any command also accepts --trace-out PATH: enable the in-process noc-trace
sink for the run and write its event log (SA convergence series, per-link
utilization, spans) as NDJSON to PATH on success";

/// Drains the global trace sink and writes one compact JSON object per
/// line (NDJSON), parseable line-by-line with `noc_json::parse`.
fn write_trace(path: &str) -> Result<(), String> {
    let events = express_noc::trace::drain_events();
    std::fs::write(path, express_noc::trace::to_ndjson(&events))
        .map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {} trace events to {path}", events.len());
    Ok(())
}

/// Parsed `--flag value` pairs.
type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(opts: &Flags, name: &str) -> Result<T, String> {
    opts.get(name)
        .ok_or_else(|| format!("missing required flag --{name}"))?
        .parse()
        .map_err(|_| format!("flag --{name} has an invalid value"))
}

fn get_or<T: std::str::FromStr>(opts: &Flags, name: &str, default: T) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{name} has an invalid value")),
    }
}

/// Parses a link list like `0-3,3-7,1-4`.
fn parse_links(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (a, b) = pair
                .split_once('-')
                .ok_or_else(|| format!("bad link {pair:?}, expected A-B"))?;
            let a = a
                .trim()
                .parse()
                .map_err(|_| format!("bad endpoint in {pair:?}"))?;
            let b = b
                .trim()
                .parse()
                .map_err(|_| format!("bad endpoint in {pair:?}"))?;
            Ok((a, b))
        })
        .collect()
}

fn parse_strategy(name: &str) -> Result<InitialStrategy, String> {
    match name {
        "dnc" | "d&c" => Ok(InitialStrategy::DivideAndConquer),
        "random" => Ok(InitialStrategy::Random),
        "greedy" => Ok(InitialStrategy::Greedy),
        other => Err(format!("unknown strategy {other:?} (dnc|random|greedy)")),
    }
}

fn parse_evaluator(name: &str) -> Result<EvalMode, String> {
    match name {
        "incremental" => Ok(EvalMode::Incremental),
        "full" => Ok(EvalMode::Full),
        other => Err(format!("unknown evaluator {other:?} (incremental|full)")),
    }
}

fn parse_pattern(name: &str) -> Result<SyntheticPattern, String> {
    match name.to_ascii_lowercase().as_str() {
        "ur" => Ok(SyntheticPattern::UniformRandom),
        "tp" => Ok(SyntheticPattern::Transpose),
        "br" => Ok(SyntheticPattern::BitReverse),
        "bc" => Ok(SyntheticPattern::BitComplement),
        "sh" => Ok(SyntheticPattern::Shuffle),
        "hs" => Ok(SyntheticPattern::Hotspot { weight: 0.4 }),
        "nn" => Ok(SyntheticPattern::NearNeighbour),
        other => Err(format!("unknown pattern {other:?} (ur|tp|br|bc|sh|hs|nn)")),
    }
}

fn cmd_solve(opts: &Flags) -> Result<(), String> {
    let _span = express_noc::trace::span("cli.solve");
    let n: usize = get(opts, "n")?;
    let c: usize = get(opts, "c")?;
    let strategy = parse_strategy(&get_or(opts, "strategy", "dnc".to_string())?)?;
    let moves: usize = get_or(opts, "moves", 10_000)?;
    let seed: u64 = get_or(opts, "seed", 42)?;
    let chains: usize = get_or(opts, "chains", 1)?;
    if chains == 0 {
        return Err("--chains must be at least 1".into());
    }
    let evaluator = parse_evaluator(&get_or(opts, "evaluator", "incremental".to_string())?)?;
    let objective = AllPairsObjective::paper();
    let params = SaParams::paper()
        .with_moves(moves)
        .with_chains(chains)
        .with_evaluator(evaluator);
    let out = solve_row(n, c, &objective, strategy, &params, seed);
    println!(
        "P({n},{c}) via {strategy:?} ({chains} chain{}): objective {:.4} cycles ({} evaluations)",
        if chains == 1 { "" } else { "s" },
        out.best_objective,
        out.evaluations
    );
    print!("{}", display::render_row(&out.best));
    Ok(())
}

/// Prints a finished solve job in the exact format `cmd_solve` uses, so
/// `resume` (and a `checkpoint` that finishes early) emit bytes a direct
/// `solve` of the same parameters would have produced.
fn print_solved_job(job: &SolveJob) {
    let out = job.outcome();
    let (n, c) = (job.n(), job.c_limit());
    let strategy = job.strategy();
    let chains = job.params().chains.max(1);
    println!(
        "P({n},{c}) via {strategy:?} ({chains} chain{}): objective {:.4} cycles ({} evaluations)",
        if chains == 1 { "" } else { "s" },
        out.best_objective,
        out.evaluations
    );
    print!("{}", display::render_row(&out.best));
}

fn cmd_checkpoint(opts: &Flags) -> Result<(), String> {
    let _span = express_noc::trace::span("cli.checkpoint");
    let n: usize = get(opts, "n")?;
    let c: usize = get(opts, "c")?;
    let strategy = parse_strategy(&get_or(opts, "strategy", "dnc".to_string())?)?;
    let moves: usize = get_or(opts, "moves", 10_000)?;
    let seed: u64 = get_or(opts, "seed", 42)?;
    let chains: usize = get_or(opts, "chains", 1)?;
    if chains == 0 {
        return Err("--chains must be at least 1".into());
    }
    let evaluator = parse_evaluator(&get_or(opts, "evaluator", "incremental".to_string())?)?;
    let stages: usize = get_or(opts, "stages", 1)?;
    let path: String = get(opts, "snapshot")?;
    let objective = AllPairsObjective::paper();
    let params = SaParams::paper()
        .with_moves(moves)
        .with_chains(chains)
        .with_evaluator(evaluator);
    let mut job = SolveJob::new(
        n,
        c,
        &objective,
        strategy,
        &params,
        seed,
        objective.fingerprint(),
    );
    if job.run_stages(&objective, stages.max(1)) {
        println!("solve finished within {stages} stage(s); nothing left to checkpoint");
        print_solved_job(&job);
        return Ok(());
    }
    let bytes = job.snapshot();
    std::fs::write(&path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "checkpointed P({n},{c}) at move {}/{moves}: state_hash {:016x} ({} bytes to {path})",
        job.next_move(),
        job.state_hash(),
        bytes.len()
    );
    Ok(())
}

fn cmd_resume(opts: &Flags) -> Result<(), String> {
    let _span = express_noc::trace::span("cli.resume");
    let path: String = get(opts, "snapshot")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
    let mut job = SolveJob::restore(&bytes).map_err(|e| format!("restore {path}: {e}"))?;
    let objective = AllPairsObjective::paper();
    if job.objective_fp() != objective.fingerprint() {
        return Err(format!(
            "snapshot {path} was taken under a different objective; refusing to resume"
        ));
    }
    job.run_moves(&objective, usize::MAX);
    print_solved_job(&job);
    Ok(())
}

fn cmd_optimal(opts: &Flags) -> Result<(), String> {
    let n: usize = get(opts, "n")?;
    let c: usize = get(opts, "c")?;
    if n > 16 || (n > 10 && c > 4) {
        return Err("exhaustive search is only practical up to n = 16 with small C".into());
    }
    let out = exhaustive_optimal(n, c, &AllPairsObjective::paper());
    println!(
        "optimal P({n},{c}): {:.4} cycles ({} evaluations over {} nodes)",
        out.best_objective, out.evaluations, out.nodes
    );
    print!("{}", display::render_row(&out.best));
    Ok(())
}

fn cmd_sweep(opts: &Flags) -> Result<(), String> {
    let _span = express_noc::trace::span("cli.sweep");
    let n: usize = get(opts, "n")?;
    let base_flit: u32 = get_or(opts, "base-flit", 256)?;
    let seed: u64 = get_or(opts, "seed", 42)?;
    let chains: usize = get_or(opts, "chains", 1)?;
    if chains == 0 {
        return Err("--chains must be at least 1".into());
    }
    let budget = LinkBudget {
        n,
        base_flit_bits: base_flit,
    };
    let design = optimize_network(
        &budget,
        &PacketMix::paper(),
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper().with_chains(chains),
        seed,
    );
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>8}",
        "C", "b(bits)", "L_D", "L_S", "total"
    );
    for p in &design.points {
        let marker = if p.c_limit == design.best().c_limit {
            "  <- best"
        } else {
            ""
        };
        println!(
            "{:>4} {:>8} {:>8.2} {:>8.2} {:>8.2}{marker}",
            p.c_limit, p.flit_bits, p.avg_head, p.avg_serialization, p.avg_latency
        );
    }
    println!("\nbest placement (C = {}):", design.best().c_limit);
    print!("{}", display::render_row(&design.best().placement));
    Ok(())
}

fn build_topology(opts: &Flags, n: usize) -> Result<MeshTopology, String> {
    match opts.get("links") {
        None => Ok(MeshTopology::mesh(n)),
        Some(spec) => {
            let row = RowPlacement::with_links(n, parse_links(spec)?).map_err(|e| e.to_string())?;
            Ok(MeshTopology::uniform(n, &row))
        }
    }
}

fn cmd_render(opts: &Flags) -> Result<(), String> {
    let n: usize = get(opts, "n")?;
    let spec = opts
        .get("links")
        .ok_or("render needs --links A-B,C-D,...")?;
    let row = RowPlacement::with_links(n, parse_links(spec)?).map_err(|e| e.to_string())?;
    print!("{}", display::render_row(&row));
    println!(
        "max cross-section: {} (fits C >= that)",
        row.max_cross_section()
    );
    let topo = MeshTopology::uniform(n, &row);
    let dor = DorRouter::new(&topo, HopWeights::PAPER);
    match channel_dependency_cycle(&topo, &dor) {
        None => println!("deadlock check: PASS"),
        Some(cycle) => println!("deadlock check: FAIL — cycle {cycle:?}"),
    }
    let zero = LatencyModel::paper().zero_load(&dor);
    println!(
        "zero-load: avg head {:.2} cycles, worst pair {} cycles, avg hops {:.2}",
        zero.avg_head, zero.max_head, zero.avg_hops
    );
    Ok(())
}

fn cmd_simulate(opts: &Flags) -> Result<(), String> {
    let _span = express_noc::trace::span("cli.simulate");
    let n: usize = get(opts, "n")?;
    let pattern = parse_pattern(&get::<String>(opts, "pattern")?)?;
    let rate: f64 = get(opts, "rate")?;
    let flit: u32 = get_or(opts, "flit", 256)?;
    let cycles: u64 = get_or(opts, "cycles", 20_000)?;
    let seed: u64 = get_or(opts, "seed", 42)?;
    let topo = build_topology(opts, n)?;
    let workload = Workload::new(
        TrafficMatrix::from_pattern(pattern, n),
        rate,
        PacketMix::paper(),
    );
    let mut config = SimConfig::latency_run(flit, seed);
    config.measure_cycles = cycles;
    let stats = Simulator::new(&topo, workload, config).run();
    println!(
        "simulated {} cycles: {} packets measured, {} delivered{}",
        stats.cycles,
        stats.measured_packets,
        stats.completed_packets,
        if stats.drained {
            ""
        } else {
            " (NOT drained — beyond saturation?)"
        }
    );
    println!(
        "latency: avg {:.2}, p50 {:.0}, p95 {:.0}, p99 {:.0}, max {} cycles",
        stats.avg_packet_latency,
        stats.p50_latency,
        stats.p95_latency,
        stats.p99_latency,
        stats.max_packet_latency
    );
    println!(
        "throughput: offered {:.4}, accepted {:.4} packets/node/cycle",
        stats.offered_rate, stats.accepted_throughput
    );
    Ok(())
}

/// Set by the SIGINT handler; `serve` drains and exits when it flips.
static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT handler via the C `signal(2)` that libc (already
/// linked by std) provides — no external crate needed. Only the
/// async-signal-safe atomic store happens in the handler.
fn install_sigint_handler() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT_NUM: i32 = 2;
        signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
    }
}

fn cmd_serve(opts: &Flags) -> Result<(), String> {
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        addr: get_or(opts, "addr", defaults.addr.clone())?,
        workers: get_or(opts, "workers", defaults.workers)?,
        queue_capacity: get_or(opts, "queue", defaults.queue_capacity)?,
        cache_capacity: get_or(opts, "cache", defaults.cache_capacity)?,
        cache_shards: defaults.cache_shards,
    };
    let mut server = Server::bind(&config).map_err(|e| e.to_string())?;
    install_sigint_handler();
    server.drain_on(&SIGINT);
    // Cluster mode: forward requests whose cache shard a peer owns.
    if let Some(peers_flag) = opts.get("peers") {
        let peers: Vec<String> = peers_flag
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let node_id: usize = get(opts, "node-id")
            .map_err(|_| "--peers requires --node-id <index into the peer list>".to_string())?;
        if node_id >= peers.len() {
            return Err(format!(
                "--node-id {node_id} out of range for {} peers",
                peers.len()
            ));
        }
        let vnodes: usize = get_or(opts, "vnodes", 16)?;
        let replicas: usize = get_or(opts, "replicas", 2)?;
        let forwarder = TcpForwarder::new(node_id, peers.clone(), vnodes, replicas);
        println!(
            "cluster: node {node_id}/{} (fingerprint {:016x}, {vnodes} vnodes, {replicas} replicas)",
            peers.len(),
            forwarder.cluster_fp(),
        );
        server.set_forwarder(std::sync::Arc::new(forwarder));
    }
    println!(
        "noc-service listening on {} ({} workers, queue {}, cache {})",
        server.local_addr().map_err(|e| e.to_string())?,
        config.workers,
        config.queue_capacity,
        config.cache_capacity,
    );
    println!("Ctrl-C (or a shutdown request) drains in-flight work and exits");
    server.run().map_err(|e| e.to_string())?;
    println!("drained cleanly");
    Ok(())
}

fn cmd_request(args: &[String]) -> Result<(), String> {
    let Some((json, rest)) = args.split_first() else {
        return Err("request needs a JSON argument, e.g. \
                    request '{\"kind\":\"health\"}'"
            .into());
    };
    let opts = parse_flags(rest)?;
    let addr: String = get_or(&opts, "addr", "127.0.0.1:7474".to_string())?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reply = client.round_trip(json).map_err(|e| e.to_string())?;
    match express_noc::json::parse(&reply) {
        Ok(v) => println!("{}", v.pretty()),
        Err(_) => println!("{reply}"),
    }
    Ok(())
}

/// `scenario expand|run|describe <manifest.json>` — the manifest DSL
/// front end (format reference: docs/SCENARIOS.md).
fn cmd_scenario(args: &[String]) -> Result<(), String> {
    use express_noc::json::Value;
    use express_noc::scenario::{expand, manifest_fingerprint, run_batch_with, Manifest};

    let [action, path, rest @ ..] = args else {
        return Err("scenario needs an action and a manifest, e.g. \
                    scenario run examples/scenarios/ladder.json"
            .into());
    };
    let opts = parse_flags(rest)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let manifest = Manifest::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match action.as_str() {
        "describe" => {
            let batch = expand(&manifest).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "manifest:    {} (scenario format v{})",
                manifest.name, manifest.version
            );
            println!("fingerprint: {:016x}", manifest_fingerprint(&manifest));
            println!(
                "topology:    {0}x{0} mesh, {1} express link(s) per row{2}",
                manifest.topology.n,
                manifest.topology.links.len(),
                if manifest.placement.is_some() {
                    " + solver placement"
                } else {
                    ""
                }
            );
            println!(
                "phases:      {}",
                if manifest.phases.is_empty() {
                    "1 (implicit steady)".to_string()
                } else {
                    format!(
                        "{} ({})",
                        manifest.phases.len(),
                        manifest
                            .phases
                            .iter()
                            .map(|p| p.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            );
            for (axis, values) in &manifest.matrix {
                println!("axis:        {axis} ({} values)", values.len());
            }
            println!("scenarios:   {}", batch.len());
        }
        "expand" => {
            for s in expand(&manifest).map_err(|e| format!("{path}: {e}"))? {
                let line = express_noc::json::obj! {
                    "index" => Value::Int(s.index as i128),
                    "name" => Value::Str(s.name.clone()),
                    "fingerprint" => Value::Str(format!("{:016x}", s.fingerprint)),
                    "axes" => Value::Obj(
                        s.axes
                            .iter()
                            .map(|(axis, value)| (axis.clone(), value.to_json()))
                            .collect(),
                    ),
                };
                println!("{}", line.compact());
            }
        }
        "run" => {
            // With --addr the batch runs on a daemon and its streamed
            // NDJSON response is printed verbatim; otherwise it runs
            // in-process through the same `run_batch` the daemon uses.
            if let Some(addr) = opts.get("addr") {
                let workers: usize = get_or(&opts, "workers", 0)?;
                let lanes: usize = get_or(&opts, "batch-lanes", 0)?;
                let env = Envelope {
                    id: "scenario".to_string(),
                    deadline_ms: protocol::MAX_DEADLINE_MS,
                    forwarded: false,
                    request: Request::Scenario(Box::new(protocol::ScenarioRequest {
                        manifest,
                        workers,
                        lanes,
                    })),
                };
                let mut client =
                    Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                let lines = client
                    .round_trip_stream(&protocol::request_line(&env))
                    .map_err(|e| e.to_string())?;
                for line in lines {
                    println!("{line}");
                }
            } else {
                let workers: usize = get_or(&opts, "workers", 0)?;
                let lanes: usize = get_or(&opts, "batch-lanes", 0)?;
                let batch = run_batch_with(&manifest, workers, lanes)
                    .map_err(|e| format!("{path}: {e}"))?;
                for item in &batch.items {
                    println!("{}", item.compact());
                }
                println!("{}", batch.summary.compact());
            }
        }
        other => {
            return Err(format!(
                "unknown scenario action {other:?} (expand|run|describe)"
            ))
        }
    }
    Ok(())
}

/// `frontier` — the multi-objective Pareto sweep (docs/FRONTIER.md).
///
/// Both paths print identical bytes: locally the items and summary of
/// `service::exec` output directly; against a daemon, the `result`
/// payload of each streamed line (which wraps exactly those objects).
fn cmd_frontier(opts: &Flags) -> Result<(), String> {
    use express_noc::json::Value;
    let _span = express_noc::trace::span("cli.frontier");
    let n: usize = get(opts, "n")?;
    let request = Request::Frontier(protocol::FrontierRequest {
        n,
        base_flit: get_or(opts, "base-flit", 256)?,
        weight_steps: get_or(opts, "weight-steps", 5)?,
        moves: get_or(opts, "moves", 10_000)?,
        seed: get_or(opts, "seed", 42)?,
        workers: get_or(opts, "workers", 0)?,
    });
    if let Some(addr) = opts.get("addr") {
        let env = Envelope {
            id: "frontier".to_string(),
            deadline_ms: protocol::MAX_DEADLINE_MS,
            forwarded: false,
            request,
        };
        let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let lines = client
            .round_trip_stream(&protocol::request_line(&env))
            .map_err(|e| e.to_string())?;
        for line in &lines {
            let v = express_noc::json::parse(line).map_err(|e| format!("bad response: {e}"))?;
            if v.get("ok").and_then(Value::as_bool) != Some(true) {
                return Err(format!("daemon error: {line}"));
            }
            let result = v.get("result").ok_or("response line missing result")?;
            println!("{}", result.compact());
        }
    } else {
        let value = express_noc::service::exec::execute(&request).map_err(|e| e.to_string())?;
        let items = value
            .get("items")
            .and_then(Value::as_array)
            .ok_or("frontier result missing items")?;
        for item in items {
            println!("{}", item.compact());
        }
        let summary = value
            .get("summary")
            .ok_or("frontier result missing summary")?;
        println!("{}", summary.compact());
    }
    Ok(())
}

fn cmd_loadgen(opts: &Flags) -> Result<(), String> {
    let addr: String = get_or(opts, "addr", "127.0.0.1:7474".to_string())?;
    let addrs: Vec<String> = addr
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--addr needs at least one address".into());
    }
    let connections: usize = get_or(opts, "connections", 4)?;
    let requests: usize = get_or(opts, "requests", 50)?;
    let kind: String = get_or(opts, "kind", "solve".to_string())?;
    let n: usize = get_or(opts, "n", 8)?;
    let c: usize = get_or(opts, "c", 4)?;
    let moves: usize = get_or(opts, "moves", 2_000)?;
    let distinct: u64 = get_or(opts, "distinct", 8)?;
    let deadline_ms: u64 = get_or(opts, "deadline-ms", 30_000)?;
    if distinct == 0 {
        return Err("--distinct must be at least 1".into());
    }
    let make_request = |conn: usize, i: usize| -> String {
        // Cycle through `distinct` seeds so the run exercises both cache
        // misses (first pass) and hits (every later repetition).
        let seed = (conn * requests + i) as u64 % distinct;
        let request = match kind.as_str() {
            "simulate" => Request::Simulate(SimulateRequest {
                n,
                pattern: SyntheticPattern::UniformRandom,
                rate: 0.01,
                flit: 64,
                cycles: 5_000,
                seed,
                links: Vec::new(),
                checkpoint: 0,
            }),
            _ => Request::Solve(SolveRequest {
                n,
                c,
                strategy: InitialStrategy::DivideAndConquer,
                moves,
                chains: 1,
                evaluator: EvalMode::Incremental,
                seed,
                weights: HopWeights::PAPER,
                checkpoint: 0,
            }),
        };
        protocol::request_line(&Envelope {
            id: format!("{conn}-{i}"),
            deadline_ms,
            forwarded: false,
            request,
        })
    };
    println!(
        "loadgen: {connections} connections x {requests} {kind} requests \
         against {} peer(s) ({distinct} distinct seeds)",
        addrs.len(),
    );
    let report = generate_load_multi(&addrs, connections, requests, make_request)
        .map_err(|e| e.to_string())?;
    println!(
        "sent {}, ok {} ({} cached), errors {} in {:.2} s",
        report.sent,
        report.ok,
        report.cached,
        report.errors,
        report.elapsed.as_secs_f64(),
    );
    println!("throughput: {:.1} req/s", report.throughput_rps());
    println!(
        "latency: p50 {} us, p99 {} us, max {} us",
        report.quantile_us(0.50),
        report.quantile_us(0.99),
        report.latencies_us.last().copied().unwrap_or(0),
    );
    // Server-side view: cache hit counters from the metrics endpoint.
    let mut client = Client::connect(&addrs[0]).map_err(|e| e.to_string())?;
    if let Ok(express_noc::service::Response::Ok { result, .. }) =
        client.request(r#"{"id":"loadgen-metrics","kind":"metrics"}"#)
    {
        let hits = result
            .get("cache_hits")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let misses = result
            .get("cache_misses")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        println!("daemon cache: {hits} hits, {misses} misses");
    }
    Ok(())
}

fn cmd_cluster_sim(opts: &Flags) -> Result<(), String> {
    let nodes: usize = get_or(opts, "nodes", 3)?;
    let seed: u64 = get_or(opts, "seed", 0)?;
    let requests: u64 = get_or(opts, "requests", 12)?;
    let workers: usize = get_or(opts, "workers", 1)?;
    let drop_rate: f64 = get_or(opts, "drop", 0.0)?;
    let dup_rate: f64 = get_or(opts, "dup", 0.0)?;
    let verbose: usize = get_or(opts, "verbose", 0)?;
    if nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    let mut sim = ClusterSim::new(express_noc::cluster::SimConfig {
        nodes,
        seed,
        workers,
        drop_rate,
        dup_rate,
        ..Default::default()
    });
    // Scripted faults. The default split for --partition-at halves the
    // cluster; --kill/--kill-at removes one node outright.
    if let Some(tick) = opts.get("partition-at") {
        let tick: u64 = tick.parse().map_err(|_| "--partition-at wants a tick")?;
        let left: Vec<usize> = (0..nodes / 2).collect();
        let right: Vec<usize> = (nodes / 2..nodes).collect();
        sim.script(tick, ScriptAction::Partition(vec![left, right]));
    }
    if let Some(tick) = opts.get("heal-at") {
        let tick: u64 = tick.parse().map_err(|_| "--heal-at wants a tick")?;
        sim.script(tick, ScriptAction::Heal);
    }
    if let Some(victim) = opts.get("kill") {
        let victim: usize = victim.parse().map_err(|_| "--kill wants a node id")?;
        let tick: u64 = get_or(opts, "kill-at", 10)?;
        sim.script(tick, ScriptAction::Kill(victim));
    }
    // Client workload: solve requests spread round-robin over the nodes,
    // with repeating seeds so cache shards and forwarding both engage.
    for r in 0..requests {
        let line = format!(
            r#"{{"id":"cli-{r}","kind":"solve","n":6,"c":3,"moves":60,"seed":{}}}"#,
            r % 4,
        );
        sim.client_request(2 + 3 * r, (r % nodes as u64) as usize, line);
    }
    let report = sim.run();
    if verbose > 0 {
        for event in &report.events {
            println!("{event}");
        }
    }
    println!(
        "cluster-sim: {nodes} nodes, seed {seed}, {} accepted, {} answered, {} unanswered",
        report.accepted,
        report.responses.len(),
        report.unanswered,
    );
    println!(
        "counters: forwarded {}, failover {}, ring_change {}, dropped {}",
        report.counters.forwarded,
        report.counters.failover,
        report.counters.ring_change,
        report.counters.dropped,
    );
    let fps: Vec<String> = report
        .ring_fingerprints
        .iter()
        .map(|(node, fp)| format!("{node}:{fp:016x}"))
        .collect();
    println!("ring views after {} ticks: {}", report.ticks, fps.join(" "));
    let converged = report
        .ring_fingerprints
        .windows(2)
        .all(|w| w[0].1 == w[1].1);
    println!(
        "ring convergence: {}",
        if converged { "converged" } else { "DIVERGED" }
    );
    if report.unanswered > 0 {
        return Err(format!(
            "{} accepted request(s) left unanswered",
            report.unanswered
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_pairs() {
        let args: Vec<String> = ["--n", "8", "--c", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags["n"], "8");
        assert_eq!(get::<usize>(&flags, "c").unwrap(), 4);
        assert_eq!(get_or::<u64>(&flags, "seed", 7).unwrap(), 7);
    }

    #[test]
    fn parse_flags_rejects_bad_shape() {
        let args: Vec<String> = ["--n"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
        let args: Vec<String> = ["n", "8"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_links_list() {
        assert_eq!(parse_links("0-3,3-7").unwrap(), vec![(0, 3), (3, 7)]);
        assert!(parse_links("0+3").is_err());
        assert!(parse_links("a-b").is_err());
        assert_eq!(parse_links("").unwrap(), vec![]);
    }

    #[test]
    fn parse_enums() {
        assert_eq!(
            parse_strategy("dnc").unwrap(),
            InitialStrategy::DivideAndConquer
        );
        assert!(parse_strategy("zen").is_err());
        assert_eq!(parse_pattern("TP").unwrap(), SyntheticPattern::Transpose);
        assert!(parse_pattern("xx").is_err());
    }
}
