//! Umbrella crate.
pub use noc_cluster as cluster;
pub use noc_json as json;
pub use noc_model as model;
pub use noc_pareto as pareto;
pub use noc_placement as placement;
pub use noc_power as power;
pub use noc_rng as rng;
pub use noc_routing as routing;
pub use noc_scenario as scenario;
pub use noc_service as service;
pub use noc_sim as sim;
pub use noc_snapshot as snapshot;
pub use noc_topology as topology;
pub use noc_trace as trace;
pub use noc_traffic as traffic;
