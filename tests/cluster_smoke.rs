//! End-to-end cluster smoke tests through the CLI binary and the
//! library surface: the `cluster-sim` subcommand reproduces its output
//! from a seed, and a real multi-daemon cluster forwards requests
//! between TCP peers.

use express_noc::cluster::{ClusterSim, ScriptAction, SimConfig, TcpForwarder};
use express_noc::placement::{EvalMode, InitialStrategy};
use express_noc::routing::HopWeights;
use express_noc::service::protocol::{self, Request, SolveRequest};
use express_noc::service::{Client, Response, Server, ServiceConfig};
use std::process::Command;
use std::sync::Arc;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_express-noc-cli"))
}

#[test]
fn cluster_sim_subcommand_reproduces_from_a_seed() {
    let run = || {
        let out = cli()
            .args([
                "cluster-sim",
                "--nodes",
                "4",
                "--seed",
                "13",
                "--requests",
                "10",
                "--partition-at",
                "12",
                "--heal-at",
                "80",
                "--verbose",
                "1",
            ])
            .output()
            .expect("cluster-sim runs");
        assert!(
            out.status.success(),
            "cluster-sim failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 output")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must reproduce the full output");
    assert!(first.contains("0 unanswered"));
    assert!(first.contains("ring convergence: converged"));
    // The partition forces at least one failover or drop to appear.
    assert!(first.contains("partition"));
}

#[test]
fn two_tcp_daemons_forward_to_the_shard_owner() {
    // Bind two servers on ephemeral ports, then wire each one's
    // forwarder with the discovered peer list.
    let config = |_: usize| ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        cache_shards: 2,
    };
    let mut a = Server::bind(&config(0)).expect("bind a");
    let mut b = Server::bind(&config(1)).expect("bind b");
    let peers = vec![
        a.local_addr().expect("addr a").to_string(),
        b.local_addr().expect("addr b").to_string(),
    ];
    a.set_forwarder(Arc::new(TcpForwarder::new(0, peers.clone(), 16, 1)));
    b.set_forwarder(Arc::new(TcpForwarder::new(1, peers.clone(), 16, 1)));
    let ha = a.handle();
    let hb = b.handle();
    let ta = std::thread::spawn(move || a.run());
    let tb = std::thread::spawn(move || b.run());

    // Send distinct solves to node A only: the ones whose shard B owns
    // are forwarded, executed on B, and answered through A.
    let mut client = Client::connect(&peers[0]).expect("connect a");
    for seed in 0..8u64 {
        let line = protocol::request_line(&protocol::Envelope {
            id: format!("smoke-{seed}"),
            deadline_ms: 30_000,
            forwarded: false,
            request: Request::Solve(SolveRequest {
                n: 6,
                c: 3,
                strategy: InitialStrategy::DivideAndConquer,
                moves: 60,
                chains: 1,
                evaluator: EvalMode::Incremental,
                seed,
                weights: HopWeights::PAPER,
                checkpoint: 0,
            }),
        });
        match client.request(&line).expect("round trip") {
            Response::Ok { id, .. } => assert_eq!(id, format!("smoke-{seed}")),
            Response::Err { code, message, .. } => panic!("solve failed: {code:?} {message}"),
        }
    }
    // Every key has exactly one owner: re-sending the same seeds to B
    // must be answered (cached on whichever node owns each shard).
    let mut client_b = Client::connect(&peers[1]).expect("connect b");
    for seed in 0..8u64 {
        let line = format!(
            r#"{{"id":"again-{seed}","kind":"solve","n":6,"c":3,"moves":60,"seed":{seed}}}"#
        );
        assert!(matches!(
            client_b.request(&line).expect("round trip"),
            Response::Ok { .. }
        ));
    }

    ha.shutdown();
    hb.shutdown();
    // Unblock the accept loops.
    let _ = Client::connect(&peers[0]);
    let _ = Client::connect(&peers[1]);
    ta.join().expect("join a").expect("server a");
    tb.join().expect("join b").expect("server b");
}

#[test]
fn library_sim_partition_heal_is_deterministic() {
    let run = || {
        let mut sim = ClusterSim::new(SimConfig {
            nodes: 3,
            seed: 99,
            drop_rate: 0.05,
            dup_rate: 0.05,
            ..SimConfig::default()
        });
        sim.script(10, ScriptAction::Partition(vec![vec![0], vec![1, 2]]));
        sim.script(70, ScriptAction::Heal);
        for r in 0..9u64 {
            let line = format!(
                r#"{{"id":"lib-{r}","kind":"solve","n":6,"c":3,"moves":60,"seed":{}}}"#,
                r % 3
            );
            sim.client_request(2 + 6 * r, (r % 3) as usize, line);
        }
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.unanswered, 0);
}
