//! Cross-crate integration tests: the full pipeline from optimizer to
//! simulator to power model, at sizes small enough for CI.

use express_noc::model::{LatencyModel, LinkBudget, PacketMix};
use express_noc::placement::objective::AllPairsObjective;
use express_noc::placement::{
    exhaustive_optimal, optimize_network, solve_row, InitialStrategy, SaParams,
};
use express_noc::power::{network_power, PowerConfig};
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{hfb_mesh, MeshTopology};
use express_noc::traffic::{ParsecBenchmark, SyntheticPattern, TrafficMatrix, Workload};

fn quick_params() -> SaParams {
    SaParams::paper().with_moves(2_000)
}

#[test]
fn optimizer_to_simulator_pipeline() {
    // Optimize a 4x4 network, then confirm the simulated win matches the
    // analytic prediction's direction and magnitude.
    let budget = LinkBudget::paper(4);
    let mix = PacketMix::paper();
    let design = optimize_network(
        &budget,
        &mix,
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &quick_params(),
        11,
    );
    let best = design.best();
    assert!(best.c_limit > 1, "express links must pay off on 4x4");

    let workload = Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 4),
        0.01,
        mix,
    );
    let mesh_stats = Simulator::new(
        &MeshTopology::mesh(4),
        workload.clone(),
        SimConfig::latency_run(256, 5),
    )
    .run();
    let best_stats = Simulator::new(
        &design.best_topology(4),
        workload,
        SimConfig::latency_run(best.flit_bits, 5),
    )
    .run();
    assert!(mesh_stats.drained && best_stats.drained);
    assert!(
        best_stats.avg_packet_latency < mesh_stats.avg_packet_latency,
        "optimized {} !< mesh {}",
        best_stats.avg_packet_latency,
        mesh_stats.avg_packet_latency
    );
    // The analytic model predicted the same ordering.
    let mesh_point = &design.points[0];
    assert!(best.avg_latency < mesh_point.avg_latency);
}

#[test]
fn optimized_placements_are_deadlock_free() {
    // Every design point of the sweep must have an acyclic channel
    // dependency graph under table routing.
    let budget = LinkBudget::paper(4);
    let design = optimize_network(
        &budget,
        &PacketMix::paper(),
        HopWeights::PAPER,
        InitialStrategy::DivideAndConquer,
        &quick_params(),
        3,
    );
    for point in &design.points {
        let topo = MeshTopology::uniform(4, &point.placement);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        assert!(
            channel_dependency_cycle(&topo, &dor).is_none(),
            "C = {} design has a dependency cycle",
            point.c_limit
        );
    }
}

#[test]
fn simulator_matches_analytic_on_express_topology() {
    // Zero-load agreement on an *optimized* topology, not just the mesh.
    let obj = AllPairsObjective::paper();
    let row = solve_row(
        8,
        4,
        &obj,
        InitialStrategy::DivideAndConquer,
        &quick_params(),
        9,
    )
    .best;
    let topo = MeshTopology::uniform(8, &row);
    let dor = DorRouter::new(&topo, HopWeights::PAPER);
    let model = LatencyModel::paper();

    // Single-flit packets, uniform traffic, near-zero load.
    let workload = Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, 8),
        0.001,
        PacketMix::uniform(64),
    );
    let mut config = SimConfig::latency_run(64, 17);
    config.measure_cycles = 30_000;
    let stats = Simulator::new(&topo, workload, config).run();
    assert!(stats.drained);

    let mut head = 0.0;
    let mut pairs = 0u32;
    for s in 0..64 {
        for d in 0..64 {
            if s != d {
                head += model.head_pair(&dor, s, d) as f64;
                pairs += 1;
            }
        }
    }
    let analytic = head / pairs as f64; // single-flit: packet latency == head
    assert!(
        (stats.avg_packet_latency - analytic).abs() < 0.6,
        "sim {} vs analytic {}",
        stats.avg_packet_latency,
        analytic
    );
}

#[test]
fn paper_table2_mesh_values_hold_end_to_end() {
    let model = LatencyModel::paper();
    let mix = PacketMix::paper();
    let d4 = DorRouter::new(&MeshTopology::mesh(4), HopWeights::PAPER);
    let d8 = DorRouter::new(&MeshTopology::mesh(8), HopWeights::PAPER);
    assert!((model.max_packet_latency(&d4, &mix, 256) - 28.2).abs() < 1e-9);
    assert!((model.max_packet_latency(&d8, &mix, 256) - 60.2).abs() < 1e-9);
}

#[test]
fn hfb_and_optimized_beat_mesh_on_parsec_traffic() {
    let workload = ParsecBenchmark::Canneal.workload(8);
    let mut config = SimConfig::latency_run(256, 21);
    config.warmup_cycles = 1_000;
    config.measure_cycles = 5_000;

    let mesh = Simulator::new(&MeshTopology::mesh(8), workload.clone(), config).run();
    let mut hfb_config = config;
    hfb_config.flit_bits = 64;
    let hfb = Simulator::new(&hfb_mesh(8), workload, hfb_config).run();
    assert!(mesh.drained && hfb.drained);
    assert!(hfb.avg_packet_latency < mesh.avg_packet_latency);
}

#[test]
fn power_pipeline_produces_sane_magnitudes() {
    let workload = ParsecBenchmark::Ferret.workload(8);
    let topo = MeshTopology::mesh(8);
    let mut config = SimConfig::latency_run(256, 23);
    config.warmup_cycles = 1_000;
    config.measure_cycles = 5_000;
    let stats = Simulator::new(&topo, workload, config).run();
    let power = network_power(&topo, 256, 10_240, &stats, &PowerConfig::dsent_32nm());
    let total = power.total.total();
    // Watt-scale network, static roughly two-thirds at PARSEC load (§5.5).
    assert!(total > 0.5 && total < 5.0, "total {total}");
    let static_share = power.total.static_total() / total;
    assert!(
        static_share > 0.5 && static_share < 0.9,
        "static share {static_share}"
    );
}

#[test]
fn exhaustive_confirms_sa_on_8x8_row_problems() {
    // Fig. 12's headline at integration scope: D&C_SA finds the optimum of
    // P(8,2) with the full schedule.
    let obj = AllPairsObjective::paper();
    let sa = solve_row(
        8,
        2,
        &obj,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        31,
    );
    let opt = exhaustive_optimal(8, 2, &obj);
    assert!(
        (sa.best_objective - opt.best_objective).abs() < 1e-9,
        "SA {} vs optimal {}",
        sa.best_objective,
        opt.best_objective
    );
}
