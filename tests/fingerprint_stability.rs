//! Pins the FNV-1a digests produced across the workspace to their exact
//! historical values. The helpers were consolidated into
//! `noc_model::fingerprint`; this suite guarantees the consolidation (and
//! any future refactor) never silently changes a digest — cache keys,
//! cluster shard placement, and golden sim fingerprints all depend on
//! these values staying put.

use noc_model::fingerprint::Fnv1a;
use noc_placement::SaParams;
use noc_service::CacheKey;
use noc_sim::{ActivityCounters, SimConfig, SimStats};

fn fixture_stats() -> SimStats {
    SimStats {
        cycles: 10_000,
        measure_cycles: 8_000,
        nodes: 16,
        measured_packets: 400,
        completed_packets: 398,
        avg_packet_latency: 21.5,
        avg_head_latency: 18.25,
        max_packet_latency: 77,
        p50_latency: 20.0,
        p95_latency: 33.0,
        p99_latency: 41.0,
        accepted_throughput: 0.0124,
        offered_rate: 0.0125,
        avg_flits_per_packet: 1.625,
        activity: vec![
            ActivityCounters {
                buffer_writes: 100,
                buffer_reads: 99,
                crossbar_traversals: 250,
                link_flit_segments: 310,
                vc_allocations: 42,
            };
            16
        ],
        drained: true,
    }
}

#[test]
fn raw_hasher_digests_are_stable() {
    // Untagged construction starts at the bare FNV-1a offset basis — this is
    // what `SimStats::fingerprint` has always used.
    let mut raw = Fnv1a::new();
    raw.write_u64(7);
    assert_eq!(raw.finish(), 0x4bd7_a317_074c_5b62, "untagged u64(7)");

    let mut tagged = Fnv1a::with_tag("sim-config");
    tagged.write_u64(7);
    assert_eq!(tagged.finish(), 0x75b7_d0c5_d978_4ace, "tagged u64(7)");

    let empty = Fnv1a::new();
    assert_eq!(empty.finish(), 0xcbf2_9ce4_8422_2325, "FNV-1a offset basis");
}

#[test]
fn sim_config_digest_is_pinned() {
    assert_eq!(
        SimConfig::latency_run(256, 7).fingerprint(),
        0x3302_d331_3f4b_b92e
    );
    assert_eq!(
        SimConfig::throughput_run(128, 11).fingerprint(),
        0x27a8_da58_fe3d_ba0a
    );
}

#[test]
fn sim_stats_digest_is_pinned() {
    assert_eq!(fixture_stats().fingerprint(), 0x9365_d881_a875_4bdc);
}

#[test]
fn sa_params_digest_is_pinned() {
    assert_eq!(SaParams::paper().fingerprint(), 0x1364_6af1_afb0_fee3);
    assert_eq!(
        SaParams::paper().with_chains(4).fingerprint(),
        0x7054_c00c_d07e_dd46
    );
}

#[test]
fn cache_shard_key_is_pinned() {
    let key = CacheKey {
        kind: "solve",
        n: 16,
        c: 3,
        objective_fp: 0x1111_2222_3333_4444,
        params_fp: 0x5555_6666_7777_8888,
        seed: 42,
        extra: 9,
    };
    assert_eq!(key.stable_hash(), 0xc21e_97de_c466_0419);
}

#[test]
fn scenario_manifest_digest_is_pinned() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scenarios/ladder.json"
    ))
    .expect("read ladder manifest");
    let manifest = noc_scenario::Manifest::parse(&text).expect("parse ladder manifest");
    assert_eq!(
        noc_scenario::manifest_fingerprint(&manifest),
        0xa1bf_4481_741a_d194
    );
}
