//! Executable guarantees for the `frontier` product surface: the CLI
//! stream is byte-identical across repeated runs and worker counts, the
//! daemon path streams the same payload bytes as the local path, a cache
//! hit replays the identical point stream, and the `pareto.*` trace
//! counters surface in the prometheus body.

use express_noc::json::Value;
use express_noc::service::{Client, Server, ServiceConfig};
use std::process::Command;

fn run_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_express-noc-cli"))
        .args(args)
        .output()
        .expect("spawn express-noc-cli");
    assert!(
        out.status.success(),
        "cli {args:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output is utf-8")
}

const ARGS: &[&str] = &[
    "frontier",
    "--n",
    "6",
    "--weight-steps",
    "3",
    "--moves",
    "200",
    "--seed",
    "11",
];

#[test]
fn cli_frontier_is_byte_identical_across_runs_and_workers() {
    let reference = run_cli(ARGS);
    assert!(
        reference.lines().count() >= 2,
        "at least one point plus a summary"
    );
    assert_eq!(run_cli(ARGS), reference, "repeated runs must be identical");
    for workers in ["2", "8"] {
        let mut args = ARGS.to_vec();
        args.extend(["--workers", workers]);
        assert_eq!(
            run_cli(&args),
            reference,
            "worker count {workers} must not change the stream"
        );
    }
    // Every line but the last is a point; the last is the summary with
    // the frontier fingerprint.
    let lines: Vec<&str> = reference.lines().collect();
    for line in &lines[..lines.len() - 1] {
        let v = express_noc::json::parse(line).expect("point line parses");
        assert!(v.get("latency").and_then(Value::as_f64).is_some());
        assert!(v.get("power_mw").and_then(Value::as_f64).is_some());
    }
    let summary = express_noc::json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(
        summary.get("points").and_then(Value::as_usize),
        Some(lines.len() - 1)
    );
    assert!(summary.get("fingerprint").and_then(Value::as_str).is_some());
}

#[test]
fn daemon_streams_match_the_cli_and_replay_from_cache() {
    express_noc::trace::enable();
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 16,
        cache_shards: 2,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));

    let line = r#"{"id":"f","kind":"frontier","n":6,"weight_steps":3,"moves":200,"seed":11,"deadline_ms":600000}"#;
    let mut client = Client::connect(&addr).expect("connect");
    let streamed = client.round_trip_stream(line).expect("stream");
    let total = streamed.len() - 1;

    // The daemon's payloads are byte-identical to the CLI's local run —
    // same engine, same order, same serialization.
    let cli = run_cli(ARGS);
    let cli_lines: Vec<&str> = cli.lines().collect();
    assert_eq!(cli_lines.len(), total + 1);
    for (i, raw) in streamed[..total].iter().enumerate() {
        let v = express_noc::json::parse(raw).expect("item line parses");
        assert_eq!(v.get("seq").and_then(Value::as_usize), Some(i));
        assert_eq!(v.get("of").and_then(Value::as_usize), Some(total));
        assert_eq!(
            v.get("result").expect("item result").compact(),
            cli_lines[i],
            "point #{i}: daemon and CLI results differ"
        );
    }
    let summary = express_noc::json::parse(&streamed[total]).unwrap();
    assert_eq!(summary.get("done").and_then(Value::as_bool), Some(true));
    assert_eq!(
        summary.get("result").expect("summary").compact(),
        cli_lines[total]
    );

    // A repeat serves the whole frontier from the cache and replays the
    // identical point stream.
    let again = client.round_trip_stream(line).expect("cached stream");
    assert_eq!(again[..total], streamed[..total]);
    let cached = express_noc::json::parse(&again[total]).unwrap();
    assert_eq!(cached.get("cached").and_then(Value::as_bool), Some(true));

    // The pareto counters flow into the prometheus body.
    let prom = client
        .round_trip(r#"{"id":"p","kind":"prometheus"}"#)
        .expect("prometheus");
    for counter in [
        "pareto.points",
        "pareto.dominated",
        "pareto.scalarizations",
        "pareto.stream_lines",
    ] {
        assert!(
            prom.contains(counter),
            "prometheus body lost the {counter} counter"
        );
    }

    handle.shutdown();
    thread.join().unwrap();
}
