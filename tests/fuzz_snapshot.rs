//! Deterministic snapshot-decoder fuzzing: seeded truncations, bit
//! flips, and header mutations over real engine snapshots must always
//! yield a structured [`SnapshotError`] — never a panic, never a
//! silently-accepted corrupt state. The mutation schedule is drawn from
//! a fixed seed, so a failure reproduces exactly.

use express_noc::model::PacketMix;
use express_noc::placement::objective::AllPairsObjective;
use express_noc::placement::{InitialStrategy, SaParams, SolveJob};
use express_noc::rng::rngs::SmallRng;
use express_noc::rng::{Rng, SeedableRng};
use express_noc::sim::{BatchSimulator, SimConfig, Simulator};
use express_noc::snapshot::{SnapshotError, MAGIC, VERSION};
use express_noc::topology::MeshTopology;
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn workload(n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
        rate,
        PacketMix::paper(),
    )
}

fn sim_config(seed: u64) -> SimConfig {
    let mut config = SimConfig::latency_run(128, seed);
    config.warmup_cycles = 200;
    config.measure_cycles = 600;
    config
}

/// One decoder under test: restores `bytes` into its engine and reports
/// the structured outcome (the mutated input context stays fixed).
type Decoder = Box<dyn Fn(&[u8]) -> Result<(), SnapshotError>>;

/// Builds (name, pristine snapshot bytes, decoder) for each engine.
fn subjects() -> Vec<(&'static str, Vec<u8>, Decoder)> {
    let mut out: Vec<(&'static str, Vec<u8>, Decoder)> = Vec::new();

    // Scalar simulator, paused mid-measurement.
    let topo = MeshTopology::mesh(4);
    let mut sim = Simulator::new(&topo, workload(4, 0.05), sim_config(1));
    sim.run_until(300);
    let bytes = sim.snapshot();
    out.push((
        "sim-scalar",
        bytes,
        Box::new(move |b| {
            Simulator::restore(&MeshTopology::mesh(4), workload(4, 0.05), sim_config(1), b)
                .map(|_| ())
        }),
    ));

    // Batch simulator, two lanes.
    let replicas = || {
        vec![
            (workload(4, 0.04), sim_config(2)),
            (workload(4, 0.06), sim_config(3)),
        ]
    };
    let mut batch = BatchSimulator::new(&topo, replicas());
    batch.run_until(300);
    let bytes = batch.snapshot();
    out.push((
        "sim-batch",
        bytes,
        Box::new(move |b| {
            BatchSimulator::restore(&MeshTopology::mesh(4), replicas(), b).map(|_| ())
        }),
    ));

    // Resumable annealing job, cut mid-schedule.
    let objective = AllPairsObjective::paper();
    let mut job = SolveJob::new(
        8,
        4,
        &objective,
        InitialStrategy::DivideAndConquer,
        &SaParams::paper(),
        42,
        objective.fingerprint(),
    );
    job.run_moves(&objective, 1_500);
    let bytes = job.snapshot();
    out.push((
        "sa-job",
        bytes,
        Box::new(|b| SolveJob::restore(b).map(|_| ())),
    ));

    out
}

/// Decodes a mutated input, demanding a structured error: `Ok` is only
/// acceptable when the mutation was a no-op (`bytes` unchanged).
fn must_reject(name: &str, what: &str, decoder: &Decoder, bytes: &[u8], pristine: &[u8]) {
    let result = catch_unwind(AssertUnwindSafe(|| decoder(bytes)));
    match result {
        Err(_) => panic!("{name}: {what} PANICKED instead of returning SnapshotError"),
        Ok(Ok(())) => assert_eq!(
            bytes, pristine,
            "{name}: {what} decoded successfully despite changing the bytes"
        ),
        Ok(Err(_)) => {} // structured rejection — the contract
    }
}

#[test]
fn pristine_snapshots_decode() {
    for (name, bytes, decoder) in subjects() {
        assert!(decoder(&bytes).is_ok(), "{name}: pristine snapshot refused");
    }
}

#[test]
fn truncation_never_panics() {
    let mut pick = SmallRng::seed_from_u64(0xfa22_0001);
    for (name, bytes, decoder) in subjects() {
        // Every short prefix up to a cap, then random sampling beyond it:
        // the first bytes exercise the header paths, the samples the body.
        for cut in 0..bytes.len().min(64) {
            must_reject(
                name,
                &format!("truncation to {cut}"),
                &decoder,
                &bytes[..cut],
                &bytes,
            );
        }
        for _ in 0..200 {
            let cut = pick.gen_range(0..bytes.len());
            must_reject(
                name,
                &format!("truncation to {cut}"),
                &decoder,
                &bytes[..cut],
                &bytes,
            );
        }
        // The empty input and a bare header are corrupt too.
        must_reject(name, "empty input", &decoder, &[], &bytes);
        must_reject(name, "bare magic", &decoder, &MAGIC, &bytes);
    }
}

#[test]
fn bit_flips_never_panic_and_never_pass_the_digest() {
    let mut pick = SmallRng::seed_from_u64(0xfa22_0002);
    for (name, bytes, decoder) in subjects() {
        for _ in 0..400 {
            let pos = pick.gen_range(0..bytes.len());
            let bit = pick.gen_range(0..8u64) as u32;
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            must_reject(
                name,
                &format!("bit flip at byte {pos} bit {bit}"),
                &decoder,
                &mutated,
                &bytes,
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut pick = SmallRng::seed_from_u64(0xfa22_0003);
    for (name, bytes, decoder) in subjects() {
        for _ in 0..100 {
            let len = pick.gen_range(0..2 * bytes.len());
            let garbage: Vec<u8> = (0..len).map(|_| pick.gen_range(0..256u64) as u8).collect();
            must_reject(
                name,
                &format!("{len} garbage bytes"),
                &decoder,
                &garbage,
                &bytes,
            );
        }
    }
}

#[test]
fn version_bump_reports_unsupported_version() {
    for (name, bytes, decoder) in subjects() {
        let mut mutated = bytes.clone();
        let bumped = VERSION + 1;
        mutated[4..6].copy_from_slice(&bumped.to_le_bytes());
        // Recompute nothing: the digest now mismatches too, but the header
        // is validated first so the version error must win — a reader from
        // the future should say "unsupported version", not "corrupt".
        let err = decoder(&mutated).expect_err("bumped version accepted");
        match err {
            SnapshotError::UnsupportedVersion { found, supported } => {
                assert_eq!((found, supported), (bumped, VERSION), "{name}");
            }
            other => panic!("{name}: version bump produced {other:?}, not UnsupportedVersion"),
        }
    }
}

#[test]
fn docs_spec_matches_the_code() {
    // docs/SNAPSHOTS.md is the format's human-readable spec; keep its
    // load-bearing constants reconciled with the code so a version bump
    // or magic change cannot ship undocumented.
    let root = env!("CARGO_MANIFEST_DIR");
    let spec = std::fs::read_to_string(format!("{root}/docs/SNAPSHOTS.md"))
        .expect("docs/SNAPSHOTS.md exists");
    let magic = std::str::from_utf8(&MAGIC).expect("magic is ascii");
    assert!(
        spec.contains(magic),
        "docs/SNAPSHOTS.md no longer names the `{magic}` magic"
    );
    assert!(
        spec.contains("version 1") && VERSION == 1 || spec.contains(&format!("version {VERSION}")),
        "docs/SNAPSHOTS.md does not document format version {VERSION}"
    );
    for counter in [
        "snapshot.saved",
        "snapshot.resumed",
        "snapshot.corrupt_dropped",
    ] {
        assert!(spec.contains(counter), "docs lost the {counter} counter");
    }
    // The README and architecture overview must point readers at it.
    for doc in ["README.md", "docs/ARCHITECTURE.md"] {
        let text = std::fs::read_to_string(format!("{root}/{doc}")).expect(doc);
        assert!(
            text.contains("SNAPSHOTS.md"),
            "{doc} does not reference docs/SNAPSHOTS.md"
        );
    }
}

#[test]
fn wrong_kind_is_a_structured_mismatch() {
    // A valid snapshot of one engine fed to another decoder must be
    // rejected by kind, not by digest (the digest is fine!).
    let mut all = subjects();
    let (_, sa_bytes, _) = all.pop().expect("sa-job subject");
    let (name, _, sim_decoder) = all.remove(0);
    match sim_decoder(&sa_bytes) {
        Err(SnapshotError::Mismatch { .. }) => {}
        other => panic!("{name}: cross-engine restore produced {other:?}, not Mismatch"),
    }
}
