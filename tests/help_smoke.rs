//! Help-text smoke test: `express-noc-cli --help` succeeds, lists every
//! subcommand the binary dispatches, and stays reconciled with the
//! README — every `express-noc-cli <command>` the README shows must be a
//! command the help text documents.

use std::collections::BTreeSet;
use std::process::Command;

/// Every subcommand `main()` dispatches. Keep in lockstep with the match
/// in `src/bin/express-noc-cli.rs` — the help test below fails when the
/// help text and this list drift apart.
const COMMANDS: &[&str] = &[
    "solve",
    "checkpoint",
    "resume",
    "optimal",
    "sweep",
    "render",
    "simulate",
    "serve",
    "request",
    "loadgen",
    "cluster-sim",
    "scenario",
    "frontier",
];

fn help_text() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_express-noc-cli"))
        .arg("--help")
        .output()
        .expect("spawn express-noc-cli --help");
    assert!(out.status.success(), "--help must exit 0");
    String::from_utf8(out.stdout).expect("help is utf-8")
}

#[test]
fn help_lists_every_subcommand() {
    let help = help_text();
    for command in COMMANDS {
        assert!(
            help.lines().any(|l| l.trim_start().starts_with(command)),
            "--help does not document the {command:?} subcommand"
        );
    }
    // Spot-check flags that drifted in the past: the cluster flags from
    // the serve section and the scenario actions.
    for needle in [
        "--peers",
        "cluster-sim",
        "expand|run|describe",
        "--trace-out",
    ] {
        assert!(help.contains(needle), "--help lost {needle:?}");
    }
}

#[test]
fn readme_commands_exist_in_help() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md exists");
    let mut seen = BTreeSet::new();
    for chunk in readme.split("express-noc-cli").skip(1) {
        // The README writes either `express-noc-cli <cmd>` or the cargo
        // form `cargo run ... --bin express-noc-cli -- <cmd>`.
        let rest = chunk.trim_start();
        let rest = rest.strip_prefix("-- ").unwrap_or(rest);
        if let Some(word) = rest.split_whitespace().next() {
            let word = word.trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '-'));
            if !word.is_empty() {
                seen.insert(word.to_string());
            }
        }
    }
    let commands: BTreeSet<&str> = COMMANDS.iter().copied().collect();
    let documented: Vec<&String> = seen
        .iter()
        .filter(|w| commands.contains(w.as_str()))
        .collect();
    assert!(
        !documented.is_empty(),
        "README shows no express-noc-cli commands at all?"
    );
    for word in &seen {
        // Anything that looks like a subcommand (lowercase word right
        // after the binary name) must be a real one.
        if word.chars().all(|c| c.is_ascii_lowercase() || c == '-') && !word.is_empty() {
            assert!(
                commands.contains(word.as_str()),
                "README shows `express-noc-cli {word}` but the binary has no such command"
            );
        }
    }
    // The scenario quickstart the docs promise must be present verbatim.
    assert!(
        readme.contains("scenario run examples/scenarios/ladder.json"),
        "README lost the scenario quickstart"
    );
}
