//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! valid placements across the whole stack — routing, simulation, and the
//! analytic model must agree with each other.
//!
//! Cases are generated with the in-repo deterministic PRNG (`noc-rng`)
//! instead of proptest, so the suite runs in hermetic offline builds.

use express_noc::model::{LatencyModel, PacketMix};
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{ConnectionMatrix, MeshTopology};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};
use noc_rng::rngs::SmallRng;
use noc_rng::{Rng, SeedableRng};

/// Random valid placement on a row of `n` routers (n in 4..=6 keeps the
/// CDG check and simulations CI-sized).
fn small_mesh(rng: &mut SmallRng) -> (MeshTopology, usize) {
    let n = rng.gen_range(4usize..7);
    let c = rng.gen_range(2usize..5);
    let nbits = (c - 1) * (n - 2);
    let bits: Vec<bool> = (0..nbits).map(|_| rng.gen::<bool>()).collect();
    let row = ConnectionMatrix::from_bits(n, c, bits).unwrap().decode();
    (MeshTopology::uniform(n, &row), c)
}

fn for_cases(cases: u64, test_salt: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(test_salt ^ (case * 0x9E37_79B9));
        body(&mut rng);
    }
}

/// Any valid placement routes deadlock-free under DOR tables.
#[test]
fn any_valid_placement_is_deadlock_free() {
    for_cases(12, 0xE1, |rng| {
        let (topo, _c) = small_mesh(rng);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        assert!(channel_dependency_cycle(&topo, &dor).is_none());
    });
}

/// Conservation: at a safe load every measured packet drains, and the
/// simulated latency is bounded below by the analytic zero-load latency.
#[test]
fn simulation_conserves_and_bounds() {
    for_cases(12, 0xE2, |rng| {
        let (topo, _c) = small_mesh(rng);
        let seed = rng.gen::<u64>();
        let n = topo.side();
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            0.01,
            PacketMix::paper(),
        );
        let mut config = SimConfig::latency_run(64, seed);
        config.warmup_cycles = 500;
        config.measure_cycles = 3_000;
        let stats = Simulator::new(&topo, workload, config).run();
        assert!(stats.drained, "undrained at 1% load");
        assert_eq!(stats.completed_packets, stats.measured_packets);

        if stats.measured_packets > 50 {
            // Zero-load head latency averaged over UR pairs lower-bounds the
            // simulated packet latency (which adds serialization and queuing).
            let dor = DorRouter::new(&topo, HopWeights::PAPER);
            let model = LatencyModel::paper();
            let mut head = 0.0;
            let mut pairs = 0u32;
            let routers = n * n;
            for s in 0..routers {
                for d in 0..routers {
                    if s != d {
                        head += model.head_pair(&dor, s, d) as f64;
                        pairs += 1;
                    }
                }
            }
            let zero_load_head = head / pairs as f64;
            assert!(
                stats.avg_packet_latency > zero_load_head - 1.0,
                "sim {} below zero-load head {}",
                stats.avg_packet_latency,
                zero_load_head
            );
        }
    });
}

/// The analytic max head latency is an upper bound for mesh distances:
/// express links never make any pair slower than the plain mesh.
#[test]
fn express_never_slower_than_mesh_anywhere() {
    for_cases(12, 0xE3, |rng| {
        let (topo, _c) = small_mesh(rng);
        let n = topo.side();
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let mesh_dor = DorRouter::new(&MeshTopology::mesh(n), HopWeights::PAPER);
        let model = LatencyModel::paper();
        for s in 0..n * n {
            for d in 0..n * n {
                assert!(
                    model.head_pair(&dor, s, d) <= model.head_pair(&mesh_dor, s, d),
                    "pair ({s}, {d}) slower than mesh"
                );
            }
        }
    });
}
