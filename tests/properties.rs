//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! valid placements across the whole stack — routing, simulation, and the
//! analytic model must agree with each other.
//!
//! Cases are generated with the in-repo deterministic PRNG (`noc-rng`)
//! instead of proptest, so the suite runs in hermetic offline builds.

use express_noc::model::{LatencyModel, PacketMix};
use express_noc::placement::{AllPairsObjective, IncrementalAllPairs, MoveEvaluator, Objective};
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{ConnectionMatrix, MeshTopology};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};
use noc_rng::rngs::SmallRng;
use noc_rng::{Rng, SeedableRng};

/// Random valid placement on a row of `n` routers (n in 4..=6 keeps the
/// CDG check and simulations CI-sized).
fn small_mesh(rng: &mut SmallRng) -> (MeshTopology, usize) {
    let n = rng.gen_range(4usize..7);
    let c = rng.gen_range(2usize..5);
    let nbits = (c - 1) * (n - 2);
    let bits: Vec<bool> = (0..nbits).map(|_| rng.gen::<bool>()).collect();
    let row = ConnectionMatrix::from_bits(n, c, bits).unwrap().decode();
    (MeshTopology::uniform(n, &row), c)
}

fn for_cases(cases: u64, test_salt: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(test_salt ^ (case * 0x9E37_79B9));
        body(&mut rng);
    }
}

/// Any valid placement routes deadlock-free under DOR tables.
#[test]
fn any_valid_placement_is_deadlock_free() {
    for_cases(12, 0xE1, |rng| {
        let (topo, _c) = small_mesh(rng);
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        assert!(channel_dependency_cycle(&topo, &dor).is_none());
    });
}

/// Conservation: at a safe load every measured packet drains, and the
/// simulated latency is bounded below by the analytic zero-load latency.
#[test]
fn simulation_conserves_and_bounds() {
    for_cases(12, 0xE2, |rng| {
        let (topo, _c) = small_mesh(rng);
        let seed = rng.gen::<u64>();
        let n = topo.side();
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            0.01,
            PacketMix::paper(),
        );
        let mut config = SimConfig::latency_run(64, seed);
        config.warmup_cycles = 500;
        config.measure_cycles = 3_000;
        let stats = Simulator::new(&topo, workload, config).run();
        assert!(stats.drained, "undrained at 1% load");
        assert_eq!(stats.completed_packets, stats.measured_packets);

        if stats.measured_packets > 50 {
            // Zero-load head latency averaged over UR pairs lower-bounds the
            // simulated packet latency (which adds serialization and queuing).
            let dor = DorRouter::new(&topo, HopWeights::PAPER);
            let model = LatencyModel::paper();
            let mut head = 0.0;
            let mut pairs = 0u32;
            let routers = n * n;
            for s in 0..routers {
                for d in 0..routers {
                    if s != d {
                        head += model.head_pair(&dor, s, d) as f64;
                        pairs += 1;
                    }
                }
            }
            let zero_load_head = head / pairs as f64;
            assert!(
                stats.avg_packet_latency > zero_load_head - 1.0,
                "sim {} below zero-load head {}",
                stats.avg_packet_latency,
                zero_load_head
            );
        }
    });
}

/// Every connection matrix reachable by SA bit flips decodes to a valid
/// placement (§4.4.2): local links present in every cut, all cross
/// sections within the bisection limit `C`, express links well-formed,
/// and the decoded row re-encodes losslessly under the same limit.
#[test]
fn sa_reachable_matrices_stay_valid() {
    for_cases(24, 0xE4, |rng| {
        let n = rng.gen_range(4usize..13);
        let c = rng.gen_range(2usize..6);
        let mut matrix = ConnectionMatrix::new(n, c);
        let walk = rng.gen_range(50usize..200);
        for _ in 0..walk {
            matrix.flip_flat(rng.gen_range(0..matrix.bit_count()));
            let row = matrix.decode();
            assert_eq!(row.len(), n);
            row.validate(c)
                .unwrap_or_else(|e| panic!("decoded row invalid for (n={n}, c={c}): {e:?}"));
            assert!(row.is_within_limit(c));
            let sections = row.cross_sections();
            assert_eq!(sections.len(), n - 1);
            for (cut, &width) in sections.iter().enumerate() {
                // The mesh's local link is always present, so every cut
                // carries at least one wire and at most C.
                assert!(
                    (1..=c).contains(&width),
                    "cut {cut} width {width} outside 1..={c} (n={n})"
                );
            }
            for link in row.express_links() {
                assert!(
                    link.is_express(),
                    "non-express link {link:?} in express set"
                );
                assert!(
                    link.a + 2 <= link.b && link.b < n,
                    "link {link:?} out of row"
                );
            }
            // Round trip: a decoded placement must be representable again
            // under the same limit, and re-decode to the same topology.
            let encoded = ConnectionMatrix::encode(&row, c)
                .unwrap_or_else(|| panic!("decoded row not re-encodable (n={n}, c={c})"));
            assert_eq!(encoded.decode(), row);
        }
    });
}

/// The incremental move evaluator must stay *bit-identical* to the full
/// all-pairs objective across arbitrary random flip bursts — this is the
/// contract SA relies on when it skips full re-evaluation.
#[test]
fn incremental_evaluator_matches_full_eval_after_flip_bursts() {
    for_cases(10, 0xE5, |rng| {
        let n = rng.gen_range(4usize..11);
        let c = rng.gen_range(2usize..5);
        let mut matrix = ConnectionMatrix::new(n, c);
        let mut eval = IncrementalAllPairs::new(&matrix, HopWeights::PAPER);
        let full = AllPairsObjective::paper();
        assert_eq!(
            eval.objective().to_bits(),
            full.eval(&matrix.decode()).to_bits(),
            "fresh evaluator disagrees with full eval (n={n}, c={c})"
        );
        for _ in 0..20 {
            let burst = rng.gen_range(1usize..8);
            let mut incremental = f64::NAN;
            for _ in 0..burst {
                let bit = rng.gen_range(0..matrix.bit_count());
                matrix.flip_flat(bit);
                incremental = eval.flip(bit);
            }
            let reference = full.eval(&matrix.decode());
            assert_eq!(
                incremental.to_bits(),
                reference.to_bits(),
                "incremental {incremental} != full {reference} after burst (n={n}, c={c})"
            );
            assert_eq!(eval.objective().to_bits(), reference.to_bits());
        }
    });
}

/// The analytic max head latency is an upper bound for mesh distances:
/// express links never make any pair slower than the plain mesh.
#[test]
fn express_never_slower_than_mesh_anywhere() {
    for_cases(12, 0xE3, |rng| {
        let (topo, _c) = small_mesh(rng);
        let n = topo.side();
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let mesh_dor = DorRouter::new(&MeshTopology::mesh(n), HopWeights::PAPER);
        let model = LatencyModel::paper();
        for s in 0..n * n {
            for d in 0..n * n {
                assert!(
                    model.head_pair(&dor, s, d) <= model.head_pair(&mesh_dor, s, d),
                    "pair ({s}, {d}) slower than mesh"
                );
            }
        }
    });
}
