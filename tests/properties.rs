//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! valid placements across the whole stack — routing, simulation, and the
//! analytic model must agree with each other.

use express_noc::model::{LatencyModel, PacketMix};
use express_noc::routing::{channel_dependency_cycle, DorRouter, HopWeights};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{ConnectionMatrix, MeshTopology};
use express_noc::traffic::{SyntheticPattern, TrafficMatrix, Workload};
use proptest::prelude::*;

/// Random valid placement on a row of `n` routers (n in 4..=6 keeps the
/// CDG check and simulations CI-sized).
fn small_mesh() -> impl Strategy<Value = (MeshTopology, usize)> {
    (4usize..=6)
        .prop_flat_map(|n| (Just(n), 2usize..=4))
        .prop_flat_map(|(n, c)| {
            let nbits = (c - 1) * (n - 2);
            proptest::collection::vec(any::<bool>(), nbits).prop_map(move |bits| {
                let row = ConnectionMatrix::from_bits(n, c, bits).unwrap().decode();
                (MeshTopology::uniform(n, &row), c)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid placement routes deadlock-free under DOR tables.
    #[test]
    fn any_valid_placement_is_deadlock_free((topo, _c) in small_mesh()) {
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        prop_assert!(channel_dependency_cycle(&topo, &dor).is_none());
    }

    /// Conservation: at a safe load every measured packet drains, and the
    /// simulated latency is bounded below by the analytic zero-load latency.
    #[test]
    fn simulation_conserves_and_bounds((topo, _c) in small_mesh(), seed in any::<u64>()) {
        let n = topo.side();
        let workload = Workload::new(
            TrafficMatrix::from_pattern(SyntheticPattern::UniformRandom, n),
            0.01,
            PacketMix::paper(),
        );
        let mut config = SimConfig::latency_run(64, seed);
        config.warmup_cycles = 500;
        config.measure_cycles = 3_000;
        let stats = Simulator::new(&topo, workload, config).run();
        prop_assert!(stats.drained, "undrained at 1% load");
        prop_assert_eq!(stats.completed_packets, stats.measured_packets);

        if stats.measured_packets > 50 {
            // Zero-load head latency averaged over UR pairs lower-bounds the
            // simulated packet latency (which adds serialization and queuing).
            let dor = DorRouter::new(&topo, HopWeights::PAPER);
            let model = LatencyModel::paper();
            let mut head = 0.0;
            let mut pairs = 0u32;
            let routers = n * n;
            for s in 0..routers {
                for d in 0..routers {
                    if s != d {
                        head += model.head_pair(&dor, s, d) as f64;
                        pairs += 1;
                    }
                }
            }
            let zero_load_head = head / pairs as f64;
            prop_assert!(
                stats.avg_packet_latency > zero_load_head - 1.0,
                "sim {} below zero-load head {}",
                stats.avg_packet_latency,
                zero_load_head
            );
        }
    }

    /// The analytic max head latency is an upper bound for mesh distances:
    /// express links never make any pair slower than the plain mesh.
    #[test]
    fn express_never_slower_than_mesh_anywhere((topo, _c) in small_mesh()) {
        let n = topo.side();
        let dor = DorRouter::new(&topo, HopWeights::PAPER);
        let mesh_dor = DorRouter::new(&MeshTopology::mesh(n), HopWeights::PAPER);
        let model = LatencyModel::paper();
        for s in 0..n * n {
            for d in 0..n * n {
                prop_assert!(
                    model.head_pair(&dor, s, d) <= model.head_pair(&mesh_dor, s, d),
                    "pair ({}, {}) slower than mesh", s, d
                );
            }
        }
    }
}
