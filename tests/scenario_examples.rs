//! Executable guarantees for the committed scenario manifests: every
//! example under `examples/scenarios/` parses, expands, and runs; every
//! example named in `docs/SCENARIOS.md` is committed (and vice versa);
//! the ladder manifest expands to a 100+ scenario batch whose result
//! stream is byte-identical across repeated CLI runs, across worker
//! counts, and between the CLI and the daemon path.

use express_noc::json::Value;
use express_noc::scenario::{expand, run_batch, Manifest};
use express_noc::service::{Client, Server, ServiceConfig};
use std::path::{Path, PathBuf};
use std::process::Command;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios")
}

fn committed_examples() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("examples/scenarios exists")
        .map(|e| e.expect("read dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no committed scenario examples");
    files
}

fn run_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_express-noc-cli"))
        .args(args)
        .output()
        .expect("spawn express-noc-cli");
    assert!(
        out.status.success(),
        "cli {args:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output is utf-8")
}

#[test]
fn every_committed_example_parses_expands_and_runs() {
    for path in committed_examples() {
        let text = std::fs::read_to_string(&path).expect("read example");
        let manifest = Manifest::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let batch =
            expand(&manifest).unwrap_or_else(|e| panic!("{} does not expand: {e}", path.display()));
        assert!(!batch.is_empty());
        let result = run_batch(&manifest, 0)
            .unwrap_or_else(|e| panic!("{} does not run: {e}", path.display()));
        assert_eq!(result.items.len(), batch.len());
        for item in &result.items {
            assert!(
                item.get("error").is_none(),
                "{}: scenario failed: {item:?}",
                path.display()
            );
        }
        // Round trip: serialize → parse is the identity.
        let reparsed = Manifest::parse(&manifest.to_value().compact()).expect("round trip");
        assert_eq!(manifest, reparsed, "{} round trip", path.display());
    }
}

#[test]
fn docs_and_committed_examples_agree() {
    let docs =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/SCENARIOS.md"))
            .expect("docs/SCENARIOS.md exists");
    let committed: Vec<String> = committed_examples()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for name in &committed {
        assert!(
            docs.contains(&format!("examples/scenarios/{name}")),
            "committed example {name} is not documented in docs/SCENARIOS.md"
        );
    }
    // Every example the docs reference is committed.
    for chunk in docs.split("examples/scenarios/").skip(1) {
        let name: String = chunk
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-' || *c == '.')
            .collect();
        if name.ends_with(".json") {
            assert!(
                committed.contains(&name),
                "docs/SCENARIOS.md references uncommitted example {name}"
            );
        }
    }
}

#[test]
fn ladder_is_a_100_plus_batch_byte_identical_across_workers() {
    let path = scenarios_dir().join("ladder.json");
    let manifest = Manifest::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(
        expand(&manifest).unwrap().len() >= 100,
        "the acceptance bar: ladder.json expands to at least 100 scenarios"
    );
    let ladder = path.to_str().unwrap();
    let reference = run_cli(&["scenario", "run", ladder, "--workers", "1"]);
    assert_eq!(
        run_cli(&["scenario", "run", ladder, "--workers", "1"]),
        reference,
        "repeated runs must be byte-identical"
    );
    for workers in ["2", "8"] {
        assert_eq!(
            run_cli(&["scenario", "run", ladder, "--workers", workers]),
            reference,
            "worker count {workers} must not change the stream"
        );
    }
    // Lane packing of the lockstep fast path is an execution detail only:
    // `--batch-lanes 1` forces the scalar path, other values repack the
    // lockstep passes, and every per-scenario fingerprint (and the rest of
    // each item, byte for byte) must be unchanged — the ordering note in
    // docs/SCENARIOS.md.
    let fingerprints: Vec<String> = reference
        .lines()
        .filter_map(|l| {
            noc_json::parse(l)
                .ok()?
                .get("fingerprint")
                .and_then(Value::as_str)
                .map(str::to_owned)
        })
        .collect();
    assert!(fingerprints.len() >= 100, "every ladder item carries one");
    for lanes in ["1", "4", "32"] {
        let run = run_cli(&["scenario", "run", ladder, "--batch-lanes", lanes]);
        assert_eq!(
            run, reference,
            "lane count {lanes} must not change the stream"
        );
        let lane_fps: Vec<String> = run
            .lines()
            .filter_map(|l| {
                noc_json::parse(l)
                    .ok()?
                    .get("fingerprint")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
            })
            .collect();
        assert_eq!(lane_fps, fingerprints, "lane count {lanes} fingerprints");
    }
    // Expansion output is deterministic too.
    let expanded = run_cli(&["scenario", "expand", ladder]);
    assert_eq!(expanded.lines().count(), expand(&manifest).unwrap().len());
    assert_eq!(run_cli(&["scenario", "expand", ladder]), expanded);
}

#[test]
fn daemon_path_streams_the_same_results_as_the_cli() {
    let path = scenarios_dir().join("ladder.json");
    let manifest = Manifest::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let total = expand(&manifest).unwrap().len();

    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 16,
        cache_shards: 2,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));

    let line = format!(
        r#"{{"id":"ex","kind":"scenario","workers":2,"manifest":{}}}"#,
        manifest.to_value().compact()
    );
    let mut client = Client::connect(&addr).expect("connect");
    let streamed = client.round_trip_stream(&line).expect("stream");
    assert_eq!(streamed.len(), total + 1, "one line per scenario + summary");

    // The daemon's item payloads are byte-identical to the CLI's local
    // run — same engine, same order, same serialization.
    let cli = run_cli(&["scenario", "run", path.to_str().unwrap(), "--workers", "1"]);
    let cli_lines: Vec<&str> = cli.lines().collect();
    assert_eq!(cli_lines.len(), total + 1);
    for (i, raw) in streamed[..total].iter().enumerate() {
        let v = noc_json::parse(raw).expect("item line parses");
        assert_eq!(v.get("seq").and_then(Value::as_usize), Some(i));
        assert_eq!(v.get("of").and_then(Value::as_usize), Some(total));
        let result = v.get("result").expect("item result");
        assert_eq!(
            result.compact(),
            cli_lines[i],
            "scenario #{i}: daemon and CLI results differ"
        );
    }
    let summary = noc_json::parse(&streamed[total]).unwrap();
    assert_eq!(summary.get("done").and_then(Value::as_bool), Some(true));
    assert_eq!(
        summary.get("result").expect("summary").compact(),
        cli_lines[total],
        "daemon and CLI summaries differ"
    );

    // A repeat streams the identical batch from the cache.
    let again = client.round_trip_stream(&line).expect("cached stream");
    assert_eq!(again[..total], streamed[..total]);
    let cached = noc_json::parse(&again[total]).unwrap();
    assert_eq!(cached.get("cached").and_then(Value::as_bool), Some(true));

    handle.shutdown();
    thread.join().unwrap();
}
