//! Golden rolling state-hash regression tests: reference `state_hash()`
//! values for the simulator paused at a fixed cycle boundary across the
//! ten golden simulation cases (mirroring `crates/sim/tests/golden.rs`),
//! and for the resumable annealer cut at a fixed move budget across four
//! solve configurations. The hashes fold the complete mutable state of
//! each engine (RNG streams included), so any change to in-flight state
//! evolution — not just to final statistics — trips these pins.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! NOC_GOLDEN_PRINT=1 cargo test --test state_hash_golden -- --nocapture
//! ```

use express_noc::model::PacketMix;
use express_noc::placement::objective::AllPairsObjective;
use express_noc::placement::{EvalMode, InitialStrategy, SaParams, SolveJob};
use express_noc::sim::{SimConfig, Simulator};
use express_noc::topology::{hfb_mesh, MeshTopology, RowPlacement};
use express_noc::traffic::{SyntheticPattern, Trace, TraceEvent, TrafficMatrix, Workload};

/// Cycle boundary at which every simulation case is paused and hashed.
/// Chosen inside every case's warmup + measurement window so the network
/// still has packets in flight when the hash is taken.
const PAUSE_CYCLE: u64 = 400;

/// Reference simulator state hashes at [`PAUSE_CYCLE`].
const SIM_GOLDEN: &[(&str, u64)] = &[
    ("mesh4_ur_low", 0x85067f701540608d),
    ("mesh4_tp_hot", 0xbe0fc45f02e81dc0),
    ("mesh4_ur_1vc", 0xc360e1ec31d78ee9),
    ("express4_ur_128b", 0xd5191c21591d3b23),
    ("mesh8_ur_saturated", 0x911f0e603f3ae115),
    ("express8_br_64b", 0x9d384d4e2a5dbda8),
    ("hfb8_shuffle", 0x379684f978fa9b39),
    ("mesh8_nn_deep_buffers", 0x65b5f76d1715c7d9),
    ("mesh4_burst_trace", 0xa488f280bf3c9c2a),
    ("mesh16_ur_low", 0x56e13825ffff09a4),
];

/// Reference annealer state hashes: (name, moves run before hashing, hash).
const SA_GOLDEN: &[(&str, usize, u64)] = &[
    ("p8c4_dnc_1chain", 2_500, 0xeb88070d65113f60),
    ("p8c3_random_2chain", 1_500, 0x048fa34893447c16),
    ("p12c6_greedy_full", 2_000, 0xe2ff44f8b048eb29),
    ("p16c8_dnc_3chain", 3_000, 0x1954d0627748ae20),
];

fn short(mut config: SimConfig, warmup: u64, measure: u64) -> SimConfig {
    config.warmup_cycles = warmup;
    config.measure_cycles = measure;
    config
}

fn workload(pattern: SyntheticPattern, n: usize, rate: f64) -> Workload {
    Workload::new(
        TrafficMatrix::from_pattern(pattern, n),
        rate,
        PacketMix::paper(),
    )
}

fn express(n: usize, links: &[(usize, usize)]) -> MeshTopology {
    let row = RowPlacement::with_links(n, links.iter().copied()).unwrap();
    MeshTopology::uniform(n, &row)
}

/// Builds one named simulation case — the same matrix as the golden
/// fingerprint suite in `crates/sim/tests/golden.rs`, but returned
/// un-run so the caller can pause it mid-flight.
fn build_case(name: &str) -> Simulator {
    use SyntheticPattern::*;
    match name {
        "mesh4_ur_low" => Simulator::new(
            &MeshTopology::mesh(4),
            workload(UniformRandom, 4, 0.02),
            short(SimConfig::latency_run(256, 1), 500, 2_000),
        ),
        "mesh4_tp_hot" => Simulator::new(
            &MeshTopology::mesh(4),
            workload(Transpose, 4, 0.10),
            short(SimConfig::latency_run(256, 2), 500, 2_000),
        ),
        "mesh4_ur_1vc" => {
            let mut config = short(SimConfig::latency_run(256, 3), 500, 2_000);
            config.vcs_per_port = 1;
            config.buffer_flits_per_vc = 2;
            Simulator::new(
                &MeshTopology::mesh(4),
                workload(UniformRandom, 4, 0.05),
                config,
            )
        }
        "express4_ur_128b" => Simulator::new(
            &express(4, &[(0, 3)]),
            workload(UniformRandom, 4, 0.03),
            short(SimConfig::latency_run(128, 4), 500, 2_000),
        ),
        "mesh8_ur_saturated" => Simulator::new(
            &MeshTopology::mesh(8),
            workload(UniformRandom, 8, 0.30),
            short(SimConfig::throughput_run(256, 5), 500, 1_500),
        ),
        "express8_br_64b" => Simulator::new(
            &express(8, &[(0, 3), (3, 7)]),
            workload(BitReverse, 8, 0.02),
            short(SimConfig::latency_run(64, 6), 500, 2_000),
        ),
        "hfb8_shuffle" => Simulator::new(
            &hfb_mesh(8),
            workload(Shuffle, 8, 0.05),
            short(SimConfig::latency_run(64, 7), 500, 2_000),
        ),
        "mesh8_nn_deep_buffers" => {
            let mut config = short(SimConfig::latency_run(256, 8), 500, 2_000);
            config.buffer_flits_per_vc = 8;
            Simulator::new(
                &MeshTopology::mesh(8),
                workload(NearNeighbour, 8, 0.08),
                config,
            )
        }
        "mesh4_burst_trace" => {
            let events = (0..24)
                .map(|i| TraceEvent {
                    cycle: 8 + (i / 6) as u64,
                    src: (i % 3) as usize,
                    dst: 12 + (i % 4) as usize,
                    bits: 256 + 128 * (i % 2) as u32,
                })
                .collect();
            let trace = Trace::new(4, events);
            let mut config = short(SimConfig::latency_run(128, 9), 0, 1_000);
            config.drain_cycles_max = 50_000;
            Simulator::from_trace(&MeshTopology::mesh(4), trace, config)
        }
        "mesh16_ur_low" => Simulator::new(
            &MeshTopology::mesh(16),
            workload(UniformRandom, 16, 0.02),
            short(SimConfig::latency_run(256, 10), 300, 800),
        ),
        other => panic!("unknown golden case {other:?}"),
    }
}

/// Builds one named annealing job — four configurations spanning the
/// initial-placement strategies, chain counts, and both evaluators.
fn build_job(name: &str) -> (SolveJob, AllPairsObjective) {
    let objective = AllPairsObjective::paper();
    let fp = objective.fingerprint();
    let job = match name {
        "p8c4_dnc_1chain" => SolveJob::new(
            8,
            4,
            &objective,
            InitialStrategy::DivideAndConquer,
            &SaParams::paper(),
            42,
            fp,
        ),
        "p8c3_random_2chain" => SolveJob::new(
            8,
            3,
            &objective,
            InitialStrategy::Random,
            &SaParams::paper().with_chains(2),
            7,
            fp,
        ),
        "p12c6_greedy_full" => SolveJob::new(
            12,
            6,
            &objective,
            InitialStrategy::Greedy,
            &SaParams::paper().with_evaluator(EvalMode::Full),
            11,
            fp,
        ),
        "p16c8_dnc_3chain" => SolveJob::new(
            16,
            8,
            &objective,
            InitialStrategy::DivideAndConquer,
            &SaParams::paper().with_chains(3),
            1,
            fp,
        ),
        other => panic!("unknown anneal case {other:?}"),
    };
    (job, objective)
}

#[test]
fn simulator_state_hashes_match_golden() {
    let print = std::env::var("NOC_GOLDEN_PRINT").is_ok_and(|v| v == "1");
    let mut failures = Vec::new();
    for &(name, expected) in SIM_GOLDEN {
        let mut sim = build_case(name);
        let done = sim.run_until(PAUSE_CYCLE);
        assert_eq!(done, None, "{name}: finished before cycle {PAUSE_CYCLE}");
        assert_eq!(sim.cycle(), PAUSE_CYCLE, "{name}: paused off-boundary");
        let got = sim.state_hash();
        if print {
            println!("    (\"{name}\", {got:#018x}),");
        }
        if got != expected {
            failures.push(format!(
                "{name}: state_hash {got:#018x} != golden {expected:#018x}"
            ));
        }
    }
    if !print {
        assert!(
            failures.is_empty(),
            "sim state-hash mismatches:\n{}",
            failures.join("\n")
        );
    }
}

#[test]
fn annealer_state_hashes_match_golden() {
    let print = std::env::var("NOC_GOLDEN_PRINT").is_ok_and(|v| v == "1");
    let mut failures = Vec::new();
    for &(name, moves, expected) in SA_GOLDEN {
        let (mut job, objective) = build_job(name);
        let done = job.run_moves(&objective, moves);
        assert!(!done, "{name}: finished within {moves} moves");
        let got = job.state_hash();
        if print {
            println!("    (\"{name}\", {moves}, {got:#018x}),");
        }
        if got != expected {
            failures.push(format!(
                "{name}: state_hash {got:#018x} != golden {expected:#018x}"
            ));
        }
    }
    if !print {
        assert!(
            failures.is_empty(),
            "annealer state-hash mismatches:\n{}",
            failures.join("\n")
        );
    }
}

#[test]
fn state_hash_is_stable_within_a_run_point() {
    // Hashing is a pure read: calling it twice at the same point yields
    // the same value and does not perturb the run.
    let mut sim = build_case("mesh4_tp_hot");
    assert_eq!(sim.run_until(PAUSE_CYCLE), None);
    let h1 = sim.state_hash();
    let h2 = sim.state_hash();
    assert_eq!(h1, h2);
    // And the hash must actually move as the state evolves.
    assert_eq!(sim.run_until(PAUSE_CYCLE + 50), None);
    assert_ne!(sim.state_hash(), h1, "state hash ignored 50 cycles of work");
}
