//! Trace smoke test: run the CLI with `--trace-out`, then validate that the
//! emitted NDJSON parses line-by-line and carries the expected telemetry —
//! SA convergence series from `solve`, per-link utilization from `simulate`,
//! and the CLI spans. This is what the CI trace-smoke job runs.

use noc_json::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

/// Runs the CLI binary with `args`, asserting success, and returns stdout.
fn run_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_express-noc-cli"))
        .args(args)
        .output()
        .expect("spawn express-noc-cli");
    assert!(
        out.status.success(),
        "cli {args:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output is utf-8")
}

/// Parses every NDJSON line with noc-json; panics on any malformed line.
fn parse_trace(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace file is empty");
    text.lines()
        .map(|line| {
            noc_json::parse(line)
                .unwrap_or_else(|e| panic!("trace line is not valid JSON: {e}\nline: {line}"))
        })
        .collect()
}

fn names(events: &[Value]) -> BTreeSet<String> {
    events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect()
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("express-noc-{name}-{}", std::process::id()));
    p
}

#[test]
fn solve_trace_carries_convergence_series() {
    let path = tmp_path("solve-trace.ndjson");
    run_cli(&[
        "solve",
        "--n",
        "8",
        "--c",
        "4",
        "--moves",
        "4000",
        "--chains",
        "2",
        "--seed",
        "7",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    let events = parse_trace(&path);
    let seen = names(&events);
    assert!(
        seen.contains("sa.epoch"),
        "no SA convergence series: {seen:?}"
    );
    assert!(
        seen.contains("sa.chain"),
        "no chain summary events: {seen:?}"
    );
    assert!(seen.contains("cli.solve"), "no CLI span: {seen:?}");

    // Every epoch point must carry the convergence fields, and the
    // temperature within a chain must be non-increasing over epochs.
    let epochs: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("sa.epoch"))
        .collect();
    assert!(epochs.len() >= 2, "expected multiple cooling epochs");
    for e in &epochs {
        for key in [
            "seed",
            "epoch",
            "temperature",
            "acceptance",
            "best",
            "current",
        ] {
            assert!(e.get(key).is_some(), "epoch missing field {key}: {e:?}");
        }
        let acc = e.get("acceptance").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&acc), "acceptance {acc} out of range");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_trace_carries_link_utilization() {
    let path = tmp_path("sim-trace.ndjson");
    run_cli(&[
        "simulate",
        "--n",
        "8",
        "--pattern",
        "ur",
        "--rate",
        "0.05",
        "--cycles",
        "2000",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    let events = parse_trace(&path);
    let seen = names(&events);
    assert!(
        seen.contains("sim.link"),
        "no link utilization series: {seen:?}"
    );
    assert!(seen.contains("sim.router"), "no router series: {seen:?}");
    assert!(seen.contains("cli.simulate"), "no CLI span: {seen:?}");

    for e in events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("sim.link"))
    {
        for key in ["src", "dst", "span", "flits", "util"] {
            assert!(e.get(key).is_some(), "link missing field {key}: {e:?}");
        }
        let util = e.get("util").unwrap().as_f64().unwrap();
        assert!(
            (0.0..=1.0).contains(&util),
            "utilization {util} out of range"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_events_are_well_formed_and_ordered() {
    let path = tmp_path("order-trace.ndjson");
    run_cli(&[
        "solve",
        "--n",
        "8",
        "--c",
        "4",
        "--moves",
        "2000",
        "--seed",
        "3",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    let events = parse_trace(&path);
    let mut last_seq = None;
    for e in &events {
        for key in ["seq", "nanos", "kind", "name"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        let kind = e.get("kind").unwrap().as_str().unwrap();
        assert!(
            matches!(kind, "span" | "series" | "point"),
            "unexpected event kind {kind}"
        );
        let seq = e.get("seq").unwrap().as_u64().unwrap();
        if let Some(prev) = last_seq {
            assert!(seq > prev, "drained events must be seq-ordered");
        }
        last_seq = Some(seq);
    }
    std::fs::remove_file(&path).ok();
}
